(* Program-level utilities: tree traversal by path, expression iteration,
   access collection, buffer lookup, and bulk index rewriting.  These are
   the primitives every transformation is written in terms of. *)

open Types

type t = program

exception Invalid_path of path

(* ------------------------------------------------------------------ *)
(* Expression utilities                                                *)
(* ------------------------------------------------------------------ *)

let rec expr_fold_refs f acc = function
  | Ref a -> f acc a
  | IterVal _ | Const _ -> acc
  | Bin (_, e1, e2) -> expr_fold_refs f (expr_fold_refs f acc e1) e2
  | Un (_, e) -> expr_fold_refs f acc e

let expr_refs e = List.rev (expr_fold_refs (fun acc a -> a :: acc) [] e)

let rec expr_map_access f = function
  | Ref a -> Ref (f a)
  | IterVal i -> IterVal i
  | Const c -> Const c
  | Bin (op, e1, e2) -> Bin (op, expr_map_access f e1, expr_map_access f e2)
  | Un (op, e) -> Un (op, expr_map_access f e)

(* Rewrite every index (both in array accesses and in IterVal leaves). *)
let rec expr_map_index f = function
  | Ref a -> Ref { a with idx = List.map f a.idx }
  | IterVal i -> IterVal (f i)
  | Const c -> Const c
  | Bin (op, e1, e2) -> Bin (op, expr_map_index f e1, expr_map_index f e2)
  | Un (op, e) -> Un (op, expr_map_index f e)

let rec expr_iter_index f = function
  | Ref a -> List.iter f a.idx
  | IterVal i -> f i
  | Const _ -> ()
  | Bin (_, e1, e2) ->
      expr_iter_index f e1;
      expr_iter_index f e2
  | Un (_, e) -> expr_iter_index f e

let stmt_map_index f (s : stmt) =
  {
    dst = { s.dst with idx = List.map f s.dst.idx };
    rhs = expr_map_index f s.rhs;
  }

let stmt_iter_index f (s : stmt) =
  List.iter f s.dst.idx;
  expr_iter_index f s.rhs

(* Number of scalar arithmetic operations in one execution of the
   statement (used by cost models and the theoretical-peak computation). *)
let rec expr_flops = function
  | Ref _ | IterVal _ | Const _ -> 0
  | Bin (_, e1, e2) -> 1 + expr_flops e1 + expr_flops e2
  | Un (_, e) -> 1 + expr_flops e

let stmt_flops s = expr_flops s.rhs

(* ------------------------------------------------------------------ *)
(* Tree traversal                                                      *)
(* ------------------------------------------------------------------ *)

let rec node_at_aux (nodes : node list) (p : path) (orig : path) : node =
  match p with
  | [] -> raise (Invalid_path orig)
  | [ i ] -> (
      match List.nth_opt nodes i with
      | Some n -> n
      | None -> raise (Invalid_path orig))
  | i :: rest -> (
      match List.nth_opt nodes i with
      | Some (Scope s) -> node_at_aux s.body rest orig
      | Some (Stmt _) | None -> raise (Invalid_path orig))

let node_at (prog : t) (p : path) : node = node_at_aux prog.body p p

let scope_at prog p =
  match node_at prog p with
  | Scope s -> s
  | Stmt _ -> raise (Invalid_path p)

let stmt_at prog p =
  match node_at prog p with
  | Stmt s -> s
  | Scope _ -> raise (Invalid_path p)

(* Replace the node at [p] by the node list returned by [f] (empty list
   removes it, several nodes splice in place). *)
let rewrite_at (prog : t) (p : path) (f : node -> node list) : t =
  let rec go nodes p =
    match p with
    | [] -> raise (Invalid_path p)
    | [ i ] ->
        if i < 0 || i >= List.length nodes then raise (Invalid_path p);
        List.concat (List.mapi (fun j n -> if j = i then f n else [ n ]) nodes)
    | i :: rest ->
        List.mapi
          (fun j n ->
            if j = i then
              match n with
              | Scope s -> Scope { s with body = go s.body rest }
              | Stmt _ -> raise (Invalid_path p)
            else n)
          nodes
  in
  { prog with body = go prog.body p }

(* Depth of the node at [p]: the number of enclosing scopes. *)
let depth_of_path (prog : t) (p : path) : int =
  let rec go nodes p acc =
    match p with
    | [] -> acc
    | i :: rest -> (
        match List.nth_opt nodes i with
        | Some (Scope s) -> if rest = [] then acc else go s.body rest (acc + 1)
        | Some (Stmt _) -> acc
        | None -> raise (Invalid_path p))
  in
  go prog.body p 0

(* Iterate all nodes with their paths, outer before inner, in order. *)
let iter_nodes (f : path -> node -> unit) (prog : t) : unit =
  let rec go prefix nodes =
    List.iteri
      (fun i n ->
        let p = prefix @ [ i ] in
        f p n;
        match n with Scope s -> go p s.body | Stmt _ -> ())
      nodes
  in
  go [] prog.body

let fold_nodes (f : 'a -> path -> node -> 'a) (init : 'a) (prog : t) : 'a =
  let acc = ref init in
  iter_nodes (fun p n -> acc := f !acc p n) prog;
  !acc

(* All statements in a node list, with the sizes of the scopes enclosing
   them inside that list (innermost last). *)
let rec stmts_under (nodes : node list) : stmt list =
  List.concat_map
    (function Stmt s -> [ s ] | Scope sc -> stmts_under sc.body)
    nodes

let stmts_of_node = function
  | Stmt s -> [ s ]
  | Scope sc -> stmts_under sc.body

(* Rewrite every index inside a subtree. *)
let rec node_map_index f = function
  | Stmt s -> Stmt (stmt_map_index f s)
  | Scope sc -> Scope { sc with body = List.map (node_map_index f) sc.body }

(* ------------------------------------------------------------------ *)
(* Accesses                                                            *)
(* ------------------------------------------------------------------ *)

type access_kind = Read | Write

(* All (kind, access) pairs performed by a statement, in order: reads of
   the right-hand side first, then the destination write. *)
let stmt_accesses (s : stmt) : (access_kind * access) list =
  let reads = List.map (fun a -> (Read, a)) (expr_refs s.rhs) in
  reads @ [ (Write, s.dst) ]

let node_accesses (n : node) : (access_kind * access) list =
  List.concat_map stmt_accesses (stmts_of_node n)

(* Arrays written / read in a subtree. *)
let written_arrays n =
  List.filter_map
    (function Write, a -> Some a.array | Read, _ -> None)
    (node_accesses n)

let read_arrays n =
  List.filter_map
    (function Read, a -> Some a.array | Write, _ -> None)
    (node_accesses n)

(* ------------------------------------------------------------------ *)
(* Buffers                                                             *)
(* ------------------------------------------------------------------ *)

let buffer_of_array (prog : t) (arr : string) : buffer =
  match
    List.find_opt (fun b -> List.mem arr b.arrays) prog.buffers
  with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "unknown array %S" arr)

let buffer_by_name (prog : t) name =
  match List.find_opt (fun b -> b.bname = name) prog.buffers with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "unknown buffer %S" name)

let replace_buffer (prog : t) (b : buffer) : t =
  {
    prog with
    buffers =
      List.map (fun b' -> if b'.bname = b.bname then b else b') prog.buffers;
  }

(* Two arrays alias iff they live in the same buffer. *)
let arrays_alias (prog : t) a1 a2 =
  a1 = a2 || (buffer_of_array prog a1).bname = (buffer_of_array prog a2).bname

(* Storage shape of a buffer: reused dimensions collapse to extent 1. *)
let storage_shape (b : buffer) : int list =
  List.map2 (fun d r -> if r then 1 else d) b.shape b.reuse

let buffer_bytes (b : buffer) : int =
  List.fold_left ( * ) (dtype_bytes b.dtype) (storage_shape b)

(* Total scalar arithmetic operations executed by the program: the basis
   of the theoretical-peak comparison in §4.1. *)
let total_flops (prog : t) : int =
  let rec go mult nodes =
    List.fold_left
      (fun acc n ->
        match n with
        | Stmt s -> acc + (mult * stmt_flops s)
        | Scope sc -> acc + go (mult * sc.size) sc.body)
      0 nodes
  in
  go 1 prog.body

(* Sizes of the scopes enclosing the node at [p], outermost first.  The
   returned array is indexed by depth, matching the {k} references valid
   at that node. *)
let enclosing_sizes (prog : t) (p : path) : int array =
  let rec go nodes p acc =
    match p with
    | [] | [ _ ] -> List.rev acc
    | i :: rest -> (
        match List.nth_opt nodes i with
        | Some (Scope s) -> go s.body rest (s.size :: acc)
        | Some (Stmt _) | None -> raise (Invalid_path p))
  in
  Array.of_list (go prog.body p [])
