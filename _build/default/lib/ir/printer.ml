(* Human-readable textual form of the IR (Figure 3b of the paper).

   Scopes print as their iteration count with annotation suffixes
   ([1024:v], [64:b]); child relationship is rendered with vertical bars.
   Buffer declarations precede the body:

     buffer_name dtype [dim1, dim2:N] location -> array1, array2

   The output of {!program} parses back with {!Parser.program}
   (round-trip property tested in the suite). *)

open Types

let binop_str = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Max -> "max"
  | Min -> "min"

let unop_str = function
  | Exp -> "exp"
  | Log -> "log"
  | Sqrt -> "sqrt"
  | Neg -> "neg"
  | Recip -> "recip"
  | Relu -> "relu"

let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else if f = Float.neg_infinity then "-inf"
  else if f = Float.infinity then "inf"
  else Printf.sprintf "%.17g" f

let access_str (a : access) =
  if a.idx = [] then a.array
  else
    Printf.sprintf "%s[%s]" a.array
      (String.concat "," (List.map Index.to_string a.idx))

(* Operator precedence: additive 1, multiplicative 2, atoms 3. *)
let rec expr_str ?(prec = 0) (e : expr) =
  match e with
  | Ref a -> access_str a
  | IterVal i -> (
      (* A plain iterator reference prints as {d} (the paper's "index as
         value"); a general affine index uses the idx(...) function form
         so the parser can reconstruct it. *)
      match (i.terms, i.offset) with
      | [ (1, d) ], 0 -> Printf.sprintf "{%d}" d
      | _ -> Printf.sprintf "idx(%s)" (Index.to_string i))
  | Const c -> float_str c
  | Un (op, e) -> Printf.sprintf "%s(%s)" (unop_str op) (expr_str e)
  | Bin ((Max | Min) as op, e1, e2) ->
      Printf.sprintf "%s(%s,%s)" (binop_str op) (expr_str e1) (expr_str e2)
  | Bin (op, e1, e2) ->
      let my_prec = match op with Add | Sub -> 1 | _ -> 2 in
      let s =
        Printf.sprintf "%s %s %s"
          (expr_str ~prec:my_prec e1)
          (binop_str op)
          (expr_str ~prec:(my_prec + 1) e2)
      in
      if my_prec < prec then "(" ^ s ^ ")" else s

let stmt_str (s : stmt) =
  Printf.sprintf "%s = %s" (access_str s.dst) (expr_str s.rhs)

let scope_header (s : scope) =
  let flags =
    (match annot_suffix s.annot with Some f -> [ f ] | None -> [])
    @ (if s.ssr then [ "ssr" ] else [])
  in
  let base = string_of_int s.size in
  let base =
    if flags = [] then base else base ^ ":" ^ String.concat "," flags
  in
  match s.guard with
  | None -> base
  | Some n -> Printf.sprintf "%s/%d" base n

let buffer_str (b : buffer) =
  let dim_str d r = if r then string_of_int d ^ ":N" else string_of_int d in
  let shape = String.concat ", " (List.map2 dim_str b.shape b.reuse) in
  let base =
    Printf.sprintf "%s %s [%s] %s" b.bname (dtype_name b.dtype) shape
      (location_name b.loc)
  in
  if b.arrays = [ b.bname ] then base
  else base ^ " -> " ^ String.concat ", " b.arrays

let body_lines (nodes : node list) : string list =
  let rec go indent nodes =
    List.concat_map
      (fun n ->
        match n with
        | Stmt s -> [ indent ^ stmt_str s ]
        | Scope sc -> (indent ^ scope_header sc) :: go (indent ^ "| ") sc.body)
      nodes
  in
  go "" nodes

let program (p : program) : string =
  let buffers = List.map buffer_str p.buffers in
  let io =
    [
      "inputs: " ^ String.concat ", " p.inputs;
      "outputs: " ^ String.concat ", " p.outputs;
    ]
  in
  String.concat "\n" (buffers @ io @ body_lines p.body) ^ "\n"

(* Body-only rendering, used as the state text fed to the PerfLLM
   embedding and in progress displays. *)
let body (p : program) : string = String.concat "\n" (body_lines p.body)

let pp fmt p = Format.pp_print_string fmt (program p)
