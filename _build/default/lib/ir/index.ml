(* Operations on affine index expressions.

   Indices are kept in a normal form: terms sorted by ascending depth,
   zero coefficients dropped.  All transformations that change loop
   structure (tiling, interchange, fusion shifts) are expressed as depth
   remappings over these terms. *)

open Types

let normalize (terms : (int * int) list) offset : index =
  let tbl = Hashtbl.create 4 in
  List.iter
    (fun (c, d) ->
      let prev = try Hashtbl.find tbl d with Not_found -> 0 in
      Hashtbl.replace tbl d (prev + c))
    terms;
  let terms =
    Hashtbl.fold (fun d c acc -> if c = 0 then acc else (c, d) :: acc) tbl []
  in
  let terms = List.sort (fun (_, d1) (_, d2) -> compare d1 d2) terms in
  { terms; offset }

let const n : index = { terms = []; offset = n }
let iter ?(coeff = 1) depth : index = normalize [ (coeff, depth) ] 0
let zero : index = const 0

let add a b = normalize (a.terms @ b.terms) (a.offset + b.offset)

let scale k a =
  normalize (List.map (fun (c, d) -> (c * k, d)) a.terms) (k * a.offset)

let equal (a : index) (b : index) = a.terms = b.terms && a.offset = b.offset

(* Coefficient of the iterator at [depth] (0 when absent). *)
let coeff_of depth (a : index) =
  try fst (List.find (fun (_, d) -> d = depth) a.terms) with Not_found -> 0

let depends_on depth a = coeff_of depth a <> 0
let depths a = List.map snd a.terms
let is_const a = a.terms = []

(* Apply a depth substitution: each term [c * {d}] becomes [c * f d] where
   [f d] is itself an index.  Used by tiling ({d} -> k*{d} + {d+1}),
   interchange (swap two depths) and fusion (shift depths). *)
let subst (f : int -> index) (a : index) : index =
  List.fold_left
    (fun acc (c, d) -> add acc (scale c (f d)))
    (const a.offset) a.terms

(* Shift all iterator depths >= [from] by [delta]. *)
let shift_depths ~from ~delta a =
  subst (fun d -> if d >= from then iter (d + delta) else iter d) a

(* Evaluate the index under an environment giving each depth's current
   iteration value. *)
let eval (env : int array) (a : index) : int =
  List.fold_left (fun acc (c, d) -> acc + (c * env.(d))) a.offset a.terms

(* Range [lo, hi] of values the index can take when iterator [d] ranges
   over [0, sizes d - 1]. Used by bounds validation. *)
let value_range (sizes : int -> int) (a : index) : int * int =
  List.fold_left
    (fun (lo, hi) (c, d) ->
      let extent = sizes d - 1 in
      if c >= 0 then (lo, hi + (c * extent)) else (lo + (c * extent), hi))
    (a.offset, a.offset) a.terms

let to_string (a : index) =
  match (a.terms, a.offset) with
  | [], n -> string_of_int n
  | terms, off ->
      let term_str (c, d) =
        if c = 1 then Printf.sprintf "{%d}" d
        else Printf.sprintf "%d*{%d}" c d
      in
      let body = String.concat "+" (List.map term_str terms) in
      if off = 0 then body
      else if off > 0 then Printf.sprintf "%s+%d" body off
      else Printf.sprintf "%s-%d" body (-off)
