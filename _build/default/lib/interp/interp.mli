(** Reference interpreter and numerical-equivalence oracle.

    Execution is faithful to *storage* semantics: arrays aliasing one
    buffer share a backing store, and a reused ([:N]) dimension has
    storage extent 1 — so an illegal [reuse_dims] really corrupts results
    here.  This is what makes numerical comparison a meaningful oracle
    for transformation correctness (the paper's empirical validation,
    §2.2). *)

type tensors = (string, float array) Hashtbl.t
(** Backing stores keyed by buffer name; all arrays of a buffer share the
    entry. *)

val alloc_tensors : Ir.Prog.t -> tensors
(** Zero-initialized storage for every buffer of the program. *)

val run : Ir.Prog.t -> tensors -> unit
(** Execute the program in place.  Guarded (padded) iterations are
    masked. *)

val random_inputs : Util.Rng.t -> Ir.Prog.t -> tensors
(** Allocate storage and fill the program's input arrays with uniform
    values in [\[-1, 1)]. *)

val copy_tensors : tensors -> tensors

val outputs_close :
  ?tol:float -> Ir.Prog.t -> tensors -> tensors -> (unit, string) result
(** Compare the declared outputs of two runs of the same program, with
    relative-or-absolute tolerance. *)

val equivalent :
  ?seed:int ->
  ?tol:float ->
  ?trials:int ->
  Ir.Prog.t ->
  Ir.Prog.t ->
  (unit, string) result
(** [equivalent reference transformed] checks that both programs compute
    the same outputs from identical random inputs over several trials.
    Input and output buffers must be materialized identically; temporary
    layouts may differ. *)
