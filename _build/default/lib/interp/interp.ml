(* Reference interpreter for the PerfDojo IR.

   Execution is completely faithful to storage semantics: arrays that
   alias the same buffer share one backing store, and a reused dimension
   ([:N] suffix) has storage extent 1, so an *illegal* application of
   reuse_dims really produces wrong results here.  This is what makes
   numerical equivalence checking a meaningful oracle for transformation
   correctness (the paper's empirical validation, §2.2). *)

open Ir.Types

type tensors = (string, float array) Hashtbl.t
(* keyed by buffer name; all arrays of a buffer share the entry *)

(* ------------------------------------------------------------------ *)
(* Storage resolution                                                  *)
(* ------------------------------------------------------------------ *)

type slot = {
  store : float array;
  strides : int array; (* stride 0 for reused dimensions *)
}

let storage_strides (b : buffer) : int array =
  let dims = Array.of_list (Ir.Prog.storage_shape b) in
  let n = Array.length dims in
  let strides = Array.make n 0 in
  let acc = ref 1 in
  for i = n - 1 downto 0 do
    strides.(i) <- (if dims.(i) = 1 && List.nth b.reuse i then 0 else !acc);
    acc := !acc * dims.(i)
  done;
  strides

let storage_size (b : buffer) =
  List.fold_left ( * ) 1 (Ir.Prog.storage_shape b)

let alloc_tensors (prog : Ir.Prog.t) : tensors =
  let t = Hashtbl.create 16 in
  List.iter
    (fun b -> Hashtbl.replace t b.bname (Array.make (storage_size b) 0.0))
    prog.buffers;
  t

let slots_of (prog : Ir.Prog.t) (t : tensors) : (string, slot) Hashtbl.t =
  let slots = Hashtbl.create 16 in
  List.iter
    (fun b ->
      let store =
        match Hashtbl.find_opt t b.bname with
        | Some s -> s
        | None -> invalid_arg ("missing tensor for buffer " ^ b.bname)
      in
      let strides = storage_strides b in
      List.iter
        (fun arr -> Hashtbl.replace slots arr { store; strides })
        b.arrays)
    prog.buffers;
  slots

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

let apply_binop op a b =
  match op with
  | Add -> a +. b
  | Sub -> a -. b
  | Mul -> a *. b
  | Div -> a /. b
  | Max -> Float.max a b
  | Min -> Float.min a b

let apply_unop op a =
  match op with
  | Exp -> exp a
  | Log -> log a
  | Sqrt -> sqrt a
  | Neg -> -.a
  | Recip -> 1.0 /. a
  | Relu -> Float.max 0.0 a

let flat_offset (slot : slot) (idx : index list) (env : int array) : int =
  let off = ref 0 in
  List.iteri
    (fun dim i ->
      let v = Ir.Index.eval env i in
      off := !off + (slot.strides.(dim) * v))
    idx;
  !off

let run (prog : Ir.Prog.t) (t : tensors) : unit =
  let slots = slots_of prog t in
  let slot arr =
    match Hashtbl.find_opt slots arr with
    | Some s -> s
    | None -> invalid_arg ("unknown array " ^ arr)
  in
  let env = Array.make 64 0 in
  let rec eval_expr = function
    | Const c -> c
    | IterVal i -> float_of_int (Ir.Index.eval env i)
    | Ref a ->
        let s = slot a.array in
        s.store.(flat_offset s a.idx env)
    | Bin (op, e1, e2) -> apply_binop op (eval_expr e1) (eval_expr e2)
    | Un (op, e) -> apply_unop op (eval_expr e)
  in
  let exec_stmt (s : stmt) =
    let v = eval_expr s.rhs in
    let sl = slot s.dst.array in
    sl.store.(flat_offset sl s.dst.idx env) <- v
  in
  let rec exec_nodes depth nodes =
    List.iter
      (fun node ->
        match node with
        | Stmt s -> exec_stmt s
        | Scope sc ->
            (* masked (padded) iterations are skipped *)
            let bound = match sc.guard with Some g -> g | None -> sc.size in
            for i = 0 to bound - 1 do
              env.(depth) <- i;
              exec_nodes (depth + 1) sc.body
            done)
      nodes
  in
  exec_nodes 0 prog.body

(* ------------------------------------------------------------------ *)
(* Equivalence checking                                                *)
(* ------------------------------------------------------------------ *)

let random_inputs (rng : Util.Rng.t) (prog : Ir.Prog.t) : tensors =
  let t = alloc_tensors prog in
  List.iter
    (fun b ->
      if List.exists (fun a -> List.mem a prog.inputs) b.arrays then begin
        let store = Hashtbl.find t b.bname in
        for i = 0 to Array.length store - 1 do
          store.(i) <- Util.Rng.float_range rng (-1.0) 1.0
        done
      end)
    prog.buffers;
  t

let copy_tensors (t : tensors) : tensors =
  let t' = Hashtbl.create (Hashtbl.length t) in
  Hashtbl.iter (fun k v -> Hashtbl.replace t' k (Array.copy v)) t;
  t'

(* Relative-or-absolute tolerance comparison over the declared outputs. *)
let outputs_close ?(tol = 1e-5) (prog : Ir.Prog.t) (a : tensors) (b : tensors)
    : (unit, string) result =
  let check_array arr =
    let buf = Ir.Prog.buffer_of_array prog arr in
    let sa = Hashtbl.find a buf.bname and sb = Hashtbl.find b buf.bname in
    if Array.length sa <> Array.length sb then
      Error
        (Printf.sprintf "output %s: storage sizes differ (%d vs %d)" arr
           (Array.length sa) (Array.length sb))
    else begin
      let bad = ref None in
      Array.iteri
        (fun i va ->
          if !bad = None then begin
            let vb = sb.(i) in
            let scale = Float.max 1.0 (Float.max (abs_float va) (abs_float vb)) in
            if
              abs_float (va -. vb) > tol *. scale
              && not (Float.is_nan va && Float.is_nan vb)
            then bad := Some (i, va, vb)
          end)
        sa;
      match !bad with
      | None -> Ok ()
      | Some (i, va, vb) ->
          Error
            (Printf.sprintf "output %s differs at flat index %d: %g vs %g" arr
               i va vb)
    end
  in
  List.fold_left
    (fun acc arr -> match acc with Error _ -> acc | Ok () -> check_array arr)
    (Ok ()) prog.outputs

(* Numerically validate that [transformed] computes the same function as
   [reference] on [trials] random inputs. *)
let equivalent ?(seed = 42) ?(tol = 1e-5) ?(trials = 2)
    (reference : Ir.Prog.t) (transformed : Ir.Prog.t) : (unit, string) result
    =
  if reference.inputs <> transformed.inputs then Error "input lists differ"
  else if reference.outputs <> transformed.outputs then
    Error "output lists differ"
  else begin
    let rng = Util.Rng.create seed in
    let rec trial k =
      if k = 0 then Ok ()
      else begin
        let t_ref = random_inputs rng reference in
        (* feed the transformed program the same input values, through its
           own buffer declarations (layouts may differ for temporaries,
           but input/output buffers must be materialized identically) *)
        let t_tr = alloc_tensors transformed in
        List.iter
          (fun arr ->
            let b_ref = Ir.Prog.buffer_of_array reference arr in
            let b_tr = Ir.Prog.buffer_of_array transformed arr in
            let src = Hashtbl.find t_ref b_ref.bname in
            let dst = Hashtbl.find t_tr b_tr.bname in
            if Array.length src <> Array.length dst then
              invalid_arg ("input storage size mismatch for " ^ arr)
            else Array.blit src 0 dst 0 (Array.length src))
          reference.inputs;
        run reference t_ref;
        run transformed t_tr;
        (* compare via each program's own buffer mapping *)
        let cmp =
          List.fold_left
            (fun acc arr ->
              match acc with
              | Error _ -> acc
              | Ok () ->
                  let b_ref = Ir.Prog.buffer_of_array reference arr in
                  let b_tr = Ir.Prog.buffer_of_array transformed arr in
                  let sa = Hashtbl.find t_ref b_ref.bname in
                  let sb = Hashtbl.find t_tr b_tr.bname in
                  if Array.length sa <> Array.length sb then
                    Error (Printf.sprintf "output %s: sizes differ" arr)
                  else begin
                    let bad = ref None in
                    Array.iteri
                      (fun i va ->
                        if !bad = None then begin
                          let vb = sb.(i) in
                          let scale =
                            Float.max 1.0
                              (Float.max (abs_float va) (abs_float vb))
                          in
                          if
                            abs_float (va -. vb) > tol *. scale
                            && not (Float.is_nan va && Float.is_nan vb)
                          then bad := Some (i, va, vb)
                        end)
                      sa;
                    match !bad with
                    | None -> Ok ()
                    | Some (i, va, vb) ->
                        Error
                          (Printf.sprintf
                             "output %s differs at flat index %d: %g vs %g"
                             arr i va vb)
                  end)
            (Ok ()) reference.outputs
        in
        match cmp with Ok () -> trial (k - 1) | Error _ -> cmp
      end
    in
    trial trials
  end
