(* Dependency analysis underpinning transformation applicability (§2.2).

   The rules here are deliberately conservative: a transformation is only
   offered at a location when these checks *prove* semantic preservation.
   The test suite empirically validates the rules by numerically comparing
   every transformed program against its original, exactly as the paper
   does. *)

open Ir.Types

(* ------------------------------------------------------------------ *)
(* Access classification                                               *)
(* ------------------------------------------------------------------ *)

(* [same_component ~depth a1 a2]: both accesses must address the same
   array; holds when, for every dimension, the coefficient of iterator
   [{depth}] is identical in both accesses, at least one dimension carries
   the iterator, and every dimension that carries it has a fully identical
   index expression.  Under this condition, iteration [i] of the loop at
   [depth] touches exactly the same element set through both accesses, so
   the dependence distance along that loop is zero. *)
let same_component ~depth (a1 : access) (a2 : access) : bool =
  a1.array = a2.array
  && List.length a1.idx = List.length a2.idx
  && begin
       let depends = ref false in
       List.for_all2
         (fun i1 i2 ->
           let c1 = Ir.Index.coeff_of depth i1
           and c2 = Ir.Index.coeff_of depth i2 in
           if c1 <> c2 then false
           else if c1 <> 0 then begin
             depends := true;
             Ir.Index.equal i1 i2
           end
           else true)
         a1.idx a2.idx
       && !depends
     end

(* A statement of the form  z[I] = z[I] (+|*|max|min) e  where [e] does not
   reference z[I]: reordering the iterations of a reduction loop only
   permutes the applications of an associative-commutative operator, which
   we accept up to floating-point rounding (validated numerically with
   tolerance, as in the paper). *)
let is_commutative_reduction (s : stmt) : bool =
  let dst = s.dst in
  let refs_dst e =
    List.exists
      (fun (a : access) -> a.array = dst.array)
      (Ir.Prog.expr_refs e)
  in
  match s.rhs with
  | Bin ((Add | Mul | Max | Min), Ref a, e) ->
      a.array = dst.array
      && List.for_all2 Ir.Index.equal a.idx dst.idx
      && not (refs_dst e)
  | Bin ((Add | Mul | Max | Min), e, Ref a) ->
      a.array = dst.array
      && List.for_all2 Ir.Index.equal a.idx dst.idx
      && not (refs_dst e)
  | _ -> false

(* The *storage-effective* index vector of an access: a reused ([:N])
   buffer dimension has storage extent 1, so whatever the logical index
   says, every iteration hits the same slot.  All dependence reasoning
   must happen on these effective indices — this is what makes the
   analyses stay sound after reuse_dims has been applied. *)
let effective (prog : Ir.Prog.t) (a : access) : access =
  let b = Ir.Prog.buffer_of_array prog a.array in
  {
    a with
    idx = List.map2 (fun i r -> if r then Ir.Index.zero else i) a.idx b.reuse;
  }

(* All (kind, effective access, stmt, order) tuples in a node list, in
   execution (document) order. *)
let ordered_accesses (prog : Ir.Prog.t) (nodes : node list) :
    (Ir.Prog.access_kind * access * stmt * int) list =
  let counter = ref 0 in
  let rec go nodes acc =
    List.fold_left
      (fun acc n ->
        match n with
        | Stmt s ->
            let o = !counter in
            incr counter;
            List.fold_left
              (fun acc (k, a) -> (k, effective prog a, s, o) :: acc)
              acc (Ir.Prog.stmt_accesses s)
        | Scope sc -> go sc.body acc)
      acc nodes
  in
  List.rev (go nodes [])

let accesses_conflict (prog : Ir.Prog.t) k1 (a1 : access) k2 (a2 : access) =
  (k1 = Ir.Prog.Write || k2 = Ir.Prog.Write)
  && Ir.Prog.arrays_alias prog a1.array a2.array

(* ------------------------------------------------------------------ *)
(* Legality rules                                                      *)
(* ------------------------------------------------------------------ *)

(* Two sibling nodes can be swapped when no array is written by one and
   accessed by the other (including aliasing through shared buffers). *)
let nodes_independent (prog : Ir.Prog.t) (n1 : node) (n2 : node) : bool =
  let acc1 = Ir.Prog.node_accesses n1 and acc2 = Ir.Prog.node_accesses n2 in
  not
    (List.exists
       (fun (k1, a1) ->
         List.exists (fun (k2, a2) -> accesses_conflict prog k1 a1 k2 a2) acc2)
       acc1)

(* Fusing two sibling scopes at [depth] interleaves their iterations.
   Safe when every conflicting access pair between the two bodies moves in
   lockstep along the fused iterator ([same_component]), so iteration [i]
   of the second body only touches data produced at iteration [i] of the
   first. *)
let fusion_safe (prog : Ir.Prog.t) ~depth (body1 : node list)
    (body2 : node list) : bool =
  let acc1 = ordered_accesses prog body1 and acc2 = ordered_accesses prog body2 in
  List.for_all
    (fun (k1, a1, _, _) ->
      List.for_all
        (fun (k2, a2, _, _) ->
          (not (accesses_conflict prog k1 a1 k2 a2))
          || same_component ~depth a1 a2)
        acc2)
    acc1

(* Loop fission is governed by the same zero-distance condition between
   the separated parts. *)
let fission_safe = fusion_safe

(* Interchange of a scope at [depth] with its immediate child at
   [depth+1].  Every conflicting access pair within the subtree must
   either move in lockstep along BOTH loops, or arise from a
   commutative reduction statement, or be an intra-iteration
   write-then-read of a location invariant in both loops (program order
   is preserved by interchange). *)
let interchange_safe (prog : Ir.Prog.t) ~depth (subtree : node list) : bool =
  let accs = ordered_accesses prog subtree in
  let pair_ok (k1, a1, s1, o1) (k2, a2, s2, o2) =
    if not (accesses_conflict prog k1 a1 k2 a2) then true
    else if a1.array <> a2.array then false (* conservative on aliases *)
    else begin
      let dep_on d =
        same_component ~depth:d a1 a2
      in
      let invariant_both =
        List.for_all
          (fun (a : access) ->
            List.for_all
              (fun i ->
                (not (Ir.Index.depends_on depth i))
                && not (Ir.Index.depends_on (depth + 1) i))
              a.idx)
          [ a1; a2 ]
      in
      let same_stmt = o1 = o2 in
      if same_stmt then
        (* write/read within a single statement: fine when the statement
           is a commutative reduction or the access pair is identical *)
        is_commutative_reduction s1
        || List.for_all2 Ir.Index.equal a1.idx a2.idx
      else if invariant_both then
        (* location untouched by either loop: safe when, per iteration,
           the write precedes the read (document order preserved), and
           writes are unconditional; reject read-before-write (dependent
           iteration patterns) *)
        (match (k1, k2) with
        | Ir.Prog.Write, Ir.Prog.Read -> o1 < o2
        | Ir.Prog.Read, Ir.Prog.Write -> o2 < o1
        | Ir.Prog.Write, Ir.Prog.Write ->
            (* last write wins; (size-1, size-1) is last in both orders *)
            List.for_all2 Ir.Index.equal a1.idx a2.idx
        | Ir.Prog.Read, Ir.Prog.Read -> true)
      else
        (* must move in lockstep along both interchanged loops, or be a
           reduction carried by one of them *)
        (dep_on depth || is_commutative_reduction s1 || is_commutative_reduction s2)
        && (dep_on (depth + 1)
           || is_commutative_reduction s1
           || is_commutative_reduction s2)
    end
  in
  List.for_all (fun p1 -> List.for_all (fun p2 -> pair_ok p1 p2) accs) accs

(* A loop at [depth] can be executed in parallel when conflicting access
   pairs inside its body always target iteration-private data: every
   conflicting pair must move in lockstep along the loop
   ([same_component] implies each iteration touches a disjoint slice). *)
let parallel_safe (prog : Ir.Prog.t) ~depth (body : node list) : bool =
  let accs = ordered_accesses prog body in
  List.for_all
    (fun (k1, a1, _, _) ->
      List.for_all
        (fun (k2, a2, _, _) ->
          (not (accesses_conflict prog k1 a1 k2 a2))
          || same_component ~depth a1 a2)
        accs)
    accs

(* GPU thread blocks can execute commutative reductions cooperatively
   (tree reduction in shared memory / warp shuffles), so block mapping
   additionally tolerates conflicts that arise from a single commutative
   reduction statement updating a loop-invariant accumulator.  Validated
   numerically with tolerance, like any reordering of a reduction. *)
let parallel_reduction_safe (prog : Ir.Prog.t) ~depth (body : node list) :
    bool =
  let accs = ordered_accesses prog body in
  List.for_all
    (fun (k1, a1, s1, o1) ->
      List.for_all
        (fun (k2, a2, s2, o2) ->
          (not (accesses_conflict prog k1 a1 k2 a2))
          || same_component ~depth a1 a2
          || (o1 = o2 && is_commutative_reduction s1)
          || (is_commutative_reduction s1 && is_commutative_reduction s2
             && s1 == s2))
        accs)
    accs

(* ------------------------------------------------------------------ *)
(* reuse_dims legality                                                 *)
(* ------------------------------------------------------------------ *)

(* Collapsing dimension [dim] of [buf] to storage extent 1 is safe when:
   - no array of the buffer is a program input or output;
   - every access to the buffer indexes [dim] with exactly [{d}] for a
     single common depth [d], all under the same scope node (so distinct
     iterations of that scope are the only users of distinct slices); and
   - within the scope body, the first access in document order is a
     write (no iteration observes a stale value from the previous one).
   This is precisely the Figure-5 situation: legal after fusion, illegal
   before. *)
let reuse_safe (prog : Ir.Prog.t) (buf : buffer) ~(dim : int) : bool =
  let is_io a = List.mem a prog.inputs || List.mem a prog.outputs in
  if List.exists is_io buf.arrays then false
  else if dim < 0 || dim >= List.length buf.shape then false
  else if List.nth buf.reuse dim then false (* already reused *)
  else begin
    (* collect accesses to the buffer with the path of their stmt *)
    let hits = ref [] in
    let order = ref 0 in
    Ir.Prog.iter_nodes
      (fun path node ->
        match node with
        | Stmt s ->
            let o = !order in
            incr order;
            List.iter
              (fun (k, (a : access)) ->
                if List.mem a.array buf.arrays then
                  hits := (k, a, path, o) :: !hits)
              (Ir.Prog.stmt_accesses s)
        | Scope _ -> ())
      prog;
    let hits = List.rev !hits in
    match hits with
    | [] -> false (* dead buffer: nothing gained, skip *)
    | (_, a0, p0, _) :: _ -> (
        match List.nth_opt a0.idx dim with
        | None -> false
        | Some i0 -> (
            match (i0.terms, i0.offset) with
            | [ (1, d) ], 0 ->
                (* every access must use exactly {d} at [dim] *)
                let plain_d (a : access) =
                  match List.nth_opt a.idx dim with
                  | Some { terms = [ (1, d') ]; offset = 0 } -> d' = d
                  | _ -> false
                in
                (* the scope ancestor at depth d must be the same node:
                   compare the path prefix that addresses it *)
                let scope_prefix path =
                  (* prefix of [path] containing the first (d+1) scope
                     ancestors *)
                  let rec go nodes path acc scopes_seen =
                    match path with
                    | [] -> None
                    | i :: rest -> (
                        match List.nth_opt nodes i with
                        | Some (Scope s) ->
                            if scopes_seen = d then Some (List.rev (i :: acc))
                            else go s.body rest (i :: acc) (scopes_seen + 1)
                        | _ -> None)
                  in
                  go prog.body path [] 0
                in
                let prefix0 = scope_prefix p0 in
                (* the scope whose iterations will share the collapsed
                   slot must execute sequentially: collapsing a dimension
                   indexed by a parallel or vectorized scope would be a
                   data race *)
                let scope_sequential =
                  match prefix0 with
                  | None -> false
                  | Some pref -> (
                      match Ir.Prog.node_at prog pref with
                      | Scope sc -> (
                          match sc.annot with
                          | Seq | Unroll | Frep -> true
                          | Par | Vec | GpuGrid | GpuBlock | GpuWarp -> false)
                      | Stmt _ -> false)
                in
                prefix0 <> None && scope_sequential
                && List.for_all
                     (fun (_, a, p, _) ->
                       plain_d a && scope_prefix p = prefix0)
                     hits
                && (match hits with
                   | (Ir.Prog.Write, _, _, _) :: _ -> true
                   | _ -> false)
            | _ -> false))
  end
