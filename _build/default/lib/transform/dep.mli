(** Dependence analyses underpinning transformation applicability (§2.2).

    All rules are deliberately conservative: a transformation is offered
    only when these checks {e prove} semantic preservation.  Analyses
    operate on {e storage-effective} indices — a reused ([:N]) dimension
    collapses every logical index to the same slot — which keeps them
    sound after [reuse_dims] has been applied.  The test suite validates
    the rules empirically by numerically comparing every transformed
    program against its original, exactly as the paper does. *)

open Ir.Types

val same_component : depth:int -> access -> access -> bool
(** Both accesses move in lockstep along the iterator at [depth]: equal
    coefficients everywhere, at least one dimension carrying the
    iterator, fully identical index expressions in those dimensions —
    hence zero dependence distance along that loop. *)

val is_commutative_reduction : stmt -> bool
(** [z[I] = z[I] (+|*|max|min) e] with [e] not referencing [z]:
    reordering its iterations only reassociates a commutative operator
    (accepted up to floating-point rounding, validated with tolerance). *)

val effective : Ir.Prog.t -> access -> access
(** The storage-effective index vector: reused dimensions become
    constant 0. *)

val ordered_accesses :
  Ir.Prog.t ->
  node list ->
  (Ir.Prog.access_kind * access * stmt * int) list
(** Every (kind, effective access, statement, document order) tuple in
    execution order. *)

val accesses_conflict :
  Ir.Prog.t -> Ir.Prog.access_kind -> access -> Ir.Prog.access_kind ->
  access -> bool
(** At least one write, and the arrays share storage. *)

val nodes_independent : Ir.Prog.t -> node -> node -> bool
(** No array written by one node is accessed by the other — the
    condition for reordering siblings. *)

val fusion_safe :
  Ir.Prog.t -> depth:int -> node list -> node list -> bool
(** Fusing two sibling scopes at [depth] is safe when every conflicting
    access pair between the bodies moves in lockstep along the fused
    iterator. *)

val fission_safe :
  Ir.Prog.t -> depth:int -> node list -> node list -> bool
(** Loop distribution obeys the same zero-distance condition. *)

val interchange_safe : Ir.Prog.t -> depth:int -> node list -> bool
(** Swapping the loops at [depth] and [depth+1] around the given subtree:
    conflicting pairs must move in lockstep along both loops, arise from
    a commutative reduction, or be intra-iteration accesses to
    loop-invariant locations in write-before-read order. *)

val parallel_safe : Ir.Prog.t -> depth:int -> node list -> bool
(** Iterations touch disjoint data: every conflicting pair moves in
    lockstep along the loop. *)

val parallel_reduction_safe : Ir.Prog.t -> depth:int -> node list -> bool
(** Like {!parallel_safe}, additionally tolerating a single commutative
    reduction statement (GPU thread blocks reduce cooperatively). *)

val reuse_safe : Ir.Prog.t -> buffer -> dim:int -> bool
(** Collapsing [dim] of the buffer to storage extent 1 is safe: not an
    interface buffer, every access indexes [dim] with exactly [{d}] for
    one common {e sequential} scope node, and the first access per
    iteration is a write (the Figure-5 rule: legal after fusion, illegal
    before). *)
