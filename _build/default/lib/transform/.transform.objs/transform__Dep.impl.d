lib/transform/dep.ml: Ir List
