lib/transform/engine.ml: Ir List Printf String Xforms
