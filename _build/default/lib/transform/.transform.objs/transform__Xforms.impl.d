lib/transform/xforms.ml: Array Dep Float Ir List Printf String
