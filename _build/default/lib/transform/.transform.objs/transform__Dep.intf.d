lib/transform/dep.mli: Ir
