lib/transform/engine.mli: Ir Xforms
