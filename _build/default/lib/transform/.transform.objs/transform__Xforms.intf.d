lib/transform/xforms.mli: Ir
