(* Tests for the framework baselines: every policy must produce valid,
   semantics-preserving schedules, and the modelled behaviours the paper
   attributes to each framework must hold. *)

module Desc = Machine.Desc

let x86 = Desc.Cpu Desc.xeon_e5_2695v4
let gh = Desc.Gpu Desc.gh200
let snitch = Desc.Snitch Desc.snitch_cluster

let check_schedule label reference (s : Baselines.scheduled) =
  (match Ir.Validate.check s.prog with
  | [] -> ()
  | errs ->
      Alcotest.failf "%s/%s invalid: %s" s.framework label
        (String.concat "; " (List.map Ir.Validate.error_to_string errs)));
  match Interp.equivalent ~tol:1e-4 reference s.prog with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s/%s: %s" s.framework label e

let semantics_tests =
  let schedules target =
    [
      ("pytorch", fun ~label:_ p -> Baselines.pytorch target p);
      ("jax", fun ~label:_ p -> Baselines.jax target p);
      ("onnxruntime", fun ~label:_ p -> Baselines.onnxruntime target p);
      ("onednn", fun ~label:_ p -> Baselines.onednn target p);
      ("pluto", fun ~label p -> Baselines.pluto ~label target p);
      ("tvm", fun ~label p -> Baselines.tvm ~budget:30 ~label target p);
    ]
  in
  List.concat_map
    (fun (tname, target) ->
      List.map
        (fun (fname, sched) ->
          Alcotest.test_case
            (Printf.sprintf "%s schedules are valid on %s" fname tname)
            `Quick
            (fun () ->
              List.iter
                (fun (e : Kernels.entry) ->
                  let p = e.build_small () in
                  check_schedule e.label p (sched ~label:e.label p))
                [
                  Kernels.find_entry Kernels.table3 "softmax";
                  Kernels.find_entry Kernels.table3 "mul";
                  Kernels.find_entry Kernels.table3 "matmul";
                ]))
        (schedules target))
    [ ("x86", x86); ("gh200", gh) ]

let behaviour_tests =
  [
    Alcotest.test_case "pytorch does not fuse across operators" `Quick
      (fun () ->
        let p = Kernels.softmax ~n:512 ~m:128 in
        let s = Baselines.pytorch x86 p in
        Alcotest.(check int) "dispatch per nest" 1 s.dispatches;
        (* softmax body is one outer nest: count stays 1; swiglu has 3 *)
        let sw = Baselines.pytorch x86 (Kernels.swiglu ~m:16 ~k:16 ~n:16) in
        Alcotest.(check int) "three dispatches" 3 sw.dispatches);
    Alcotest.test_case "jax fuses elementwise chains" `Quick (fun () ->
        (* two chained elementwise nests collapse to one dispatch *)
        let text =
          "x f32 [64] heap\nt f32 [64] heap\nz f32 [64] heap\n"
          ^ "inputs: x\noutputs: z\n64\n| t[{0}] = x[{0}] * 2\n"
          ^ "64\n| z[{0}] = t[{0}] + 1\n"
        in
        let p = Ir.Parser.program text in
        Alcotest.(check int) "pytorch: 2" 2 (Baselines.pytorch x86 p).dispatches;
        Alcotest.(check int) "jax: 1" 1 (Baselines.jax x86 p).dispatches);
    Alcotest.test_case "tvm fails deterministically on batchnorm/swiglu"
      `Quick (fun () ->
        List.iter
          (fun label ->
            let e = Kernels.find_entry Kernels.table3 label in
            let s = Baselines.tvm ~budget:10 ~label gh (e.build_small ()) in
            Alcotest.(check bool)
              (label ^ " has no valid schedule")
              true
              (s.verdict = Baselines.No_valid_schedule))
          [ "batchnorm 2"; "swiglu" ];
        (* determinism *)
        let v1 = (Baselines.tvm ~budget:10 ~label:"swiglu" gh
                    (Kernels.swiglu ~m:4 ~k:4 ~n:4)).verdict in
        let v2 = (Baselines.tvm ~budget:10 ~label:"swiglu" gh
                    (Kernels.swiglu ~m:4 ~k:4 ~n:4)).verdict in
        Alcotest.(check bool) "deterministic" true (v1 = v2));
    Alcotest.test_case "tvm template excludes storage moves" `Quick
      (fun () ->
        let caps = Machine.caps x86 in
        let p = Kernels.softmax ~n:8 ~m:8 in
        List.iter
          (fun (i : Transform.Xforms.instance) ->
            if Baselines.tvm_template i then
              Alcotest.(check bool)
                (i.xname ^ " allowed")
                false
                (List.mem i.xname
                   [ "set_storage"; "reuse_dims"; "reorder_buffer_dims";
                     "pad_scope"; "enable_ssr"; "enable_frep" ]))
          (Transform.Xforms.all caps p));
    Alcotest.test_case "pluto flags layernorm as invalid" `Quick (fun () ->
        let e = Kernels.find_entry Kernels.table3 "layernorm 1" in
        let s = Baselines.pluto ~label:"layernorm 1" x86 (e.build_small ()) in
        Alcotest.(check bool) "failed validation" true
          (s.verdict = Baselines.Failed_validation);
        let s2 = Baselines.pluto ~label:"matmul" x86
            (Kernels.matmul ~m:4 ~k:4 ~n:4) in
        Alcotest.(check bool) "matmul fine" true (s2.verdict = Baselines.Valid));
    Alcotest.test_case "handwritten snitch uses the extensions" `Quick
      (fun () ->
        let caps = Machine.caps snitch in
        let s = Baselines.handwritten_snitch caps (Kernels.scale ~n:256) in
        let has_ssr =
          Ir.Prog.fold_nodes
            (fun acc _ n ->
              acc
              ||
              match n with Ir.Types.Scope sc -> sc.ssr | Ir.Types.Stmt _ -> false)
            false s.prog
        in
        Alcotest.(check bool) "ssr used" true has_ssr;
        check_schedule "scale" (Kernels.scale ~n:256) s);
    Alcotest.test_case "dispatch overhead charged per extra kernel" `Quick
      (fun () ->
        let p = Kernels.swiglu ~m:16 ~k:16 ~n:16 in
        let s = Baselines.pytorch x86 p in
        let base = Machine.time x86 s.prog in
        let total = Baselines.time x86 s in
        Alcotest.(check bool) "overhead added" true (total > base));
  ]

let () =
  Alcotest.run "baselines"
    [ ("semantics", semantics_tests); ("behaviour", behaviour_tests) ]
