(* Tests for the reference interpreter against hand-computed results. *)

open Ir.Types

let run_with prog inputs =
  let t = Interp.alloc_tensors prog in
  List.iter (fun (name, data) -> (
    let b = Ir.Prog.buffer_of_array prog name in
    let store = Hashtbl.find t b.bname in
    Array.blit data 0 store 0 (Array.length data)))
    inputs;
  Interp.run prog t;
  t

let get prog t arr =
  Hashtbl.find t (Ir.Prog.buffer_of_array prog arr).bname

let check_floats msg expected actual =
  Alcotest.(check (list (float 1e-4))) msg (Array.to_list expected)
    (Array.to_list actual)

let elementwise_tests =
  [
    Alcotest.test_case "add" `Quick (fun () ->
        let p = Kernels.add ~n:2 ~m:2 in
        let t =
          run_with p
            [ ("x", [| 1.; 2.; 3.; 4. |]); ("y", [| 10.; 20.; 30.; 40. |]) ]
        in
        check_floats "z" [| 11.; 22.; 33.; 44. |] (get p t "z"));
    Alcotest.test_case "mul" `Quick (fun () ->
        let p = Kernels.mul ~n:1 ~m:3 in
        let t =
          run_with p [ ("x", [| 2.; 3.; 4. |]); ("y", [| 5.; 6.; 7. |]) ]
        in
        check_floats "z" [| 10.; 18.; 28. |] (get p t "z"));
    Alcotest.test_case "relu" `Quick (fun () ->
        let p = Kernels.relu ~n:1 ~m:4 in
        let t = run_with p [ ("x", [| -1.; 2.; -3.; 4. |]) ] in
        check_floats "z" [| 0.; 2.; 0.; 4. |] (get p t "z"));
    Alcotest.test_case "scale" `Quick (fun () ->
        let p = Kernels.scale ~n:3 in
        let t = run_with p [ ("x", [| 1.; 2.; 4. |]) ] in
        check_floats "z" [| 2.5; 5.; 10. |] (get p t "z"));
  ]

let reduction_tests =
  [
    Alcotest.test_case "reducemean" `Quick (fun () ->
        let p = Kernels.reducemean ~n:2 ~m:4 in
        let t =
          run_with p [ ("x", [| 1.; 2.; 3.; 4.; 10.; 20.; 30.; 40. |]) ]
        in
        check_floats "z" [| 2.5; 25. |] (get p t "z"));
    Alcotest.test_case "dot" `Quick (fun () ->
        let p = Kernels.dot ~n:3 in
        let t =
          run_with p [ ("x", [| 1.; 2.; 3. |]); ("y", [| 4.; 5.; 6. |]) ]
        in
        check_floats "z" [| 32. |] (get p t "z"));
    Alcotest.test_case "vecsum" `Quick (fun () ->
        let p = Kernels.vecsum ~n:4 in
        let t = run_with p [ ("x", [| 1.; 2.; 3.; 4. |]) ] in
        check_floats "z" [| 10. |] (get p t "z"));
    Alcotest.test_case "softmax rows sum to one" `Quick (fun () ->
        let p = Kernels.softmax ~n:2 ~m:4 in
        let rng = Util.Rng.create 7 in
        let t = Interp.random_inputs rng p in
        Interp.run p t;
        let z = get p t "z" in
        let row_sum r =
          z.((r * 4) + 0) +. z.((r * 4) + 1) +. z.((r * 4) + 2)
          +. z.((r * 4) + 3)
        in
        Alcotest.(check (float 1e-5)) "row0" 1.0 (row_sum 0);
        Alcotest.(check (float 1e-5)) "row1" 1.0 (row_sum 1));
    Alcotest.test_case "softmax known values" `Quick (fun () ->
        let p = Kernels.softmax ~n:1 ~m:2 in
        let t = run_with p [ ("x", [| 0.; 1. |]) ] in
        let e = exp 1.0 in
        check_floats "z" [| 1. /. (1. +. e); e /. (1. +. e) |] (get p t "z"));
  ]

let matmul_tests =
  [
    Alcotest.test_case "matmul 2x2" `Quick (fun () ->
        let p = Kernels.matmul ~m:2 ~k:2 ~n:2 in
        let t =
          run_with p
            [ ("a", [| 1.; 2.; 3.; 4. |]); ("b", [| 5.; 6.; 7.; 8. |]) ]
        in
        check_floats "c" [| 19.; 22.; 43.; 50. |] (get p t "c"));
    Alcotest.test_case "gemv" `Quick (fun () ->
        let p = Kernels.gemv ~m:2 ~n:3 in
        let t =
          run_with p
            [
              ("a", [| 1.; 2.; 3.; 4.; 5.; 6. |]); ("x", [| 1.; 1.; 1. |]);
            ]
        in
        check_floats "z" [| 6.; 15. |] (get p t "z"));
    Alcotest.test_case "bmm batches independent" `Quick (fun () ->
        let p = Kernels.bmm ~b:2 ~m:1 ~k:2 ~n:1 in
        let t =
          run_with p
            [
              ("x", [| 1.; 2.; 3.; 4. |]);
              (* batch0 = [1 2], batch1 = [3 4] *)
              ("y", [| 5.; 6.; 7.; 8. |]);
            ]
        in
        check_floats "z" [| 17.; 53. |] (get p t "z"));
    Alcotest.test_case "conv2d identity kernel" `Quick (fun () ->
        (* 1x1x1 conv with kernel [[1]] over 2x2 image: copies input *)
        let p = Kernels.conv2d ~n:1 ~f:1 ~c:1 ~h:2 ~w:2 ~kside:1 in
        let t =
          run_with p [ ("x", [| 1.; 2.; 3.; 4. |]); ("k", [| 1. |]) ]
        in
        check_floats "z" [| 1.; 2.; 3.; 4. |] (get p t "z"));
    Alcotest.test_case "conv2d 3x3 box filter" `Quick (fun () ->
        let p = Kernels.conv2d ~n:1 ~f:1 ~c:1 ~h:1 ~w:1 ~kside:3 in
        let x = Array.init 9 (fun i -> float_of_int (i + 1)) in
        let k = Array.make 9 1.0 in
        let t = run_with p [ ("x", x); ("k", k) ] in
        check_floats "z" [| 45. |] (get p t "z"));
  ]

let norm_tests =
  [
    Alcotest.test_case "layernorm constant row is beta" `Quick (fun () ->
        let p = Kernels.layernorm ~n:1 ~m:4 in
        let t =
          run_with p
            [
              ("x", [| 5.; 5.; 5.; 5. |]);
              ("g", [| 1.; 1.; 1.; 1. |]);
              ("b", [| 0.5; 0.5; 0.5; 0.5 |]);
            ]
        in
        (* zero-centered values / anything = 0, plus beta *)
        check_floats "z" [| 0.5; 0.5; 0.5; 0.5 |] (get p t "z"));
    Alcotest.test_case "rmsnorm unit gains" `Quick (fun () ->
        let p = Kernels.rmsnorm ~n:1 ~m:2 in
        let t =
          run_with p [ ("x", [| 3.; 4. |]); ("g", [| 1.; 1. |]) ]
        in
        let rms = sqrt (((3. *. 3.) +. (4. *. 4.)) /. 2. +. 1e-5) in
        check_floats "z" [| 3. /. rms; 4. /. rms |] (get p t "z"));
    Alcotest.test_case "batchnorm normalizes statistics" `Quick (fun () ->
        let p = Kernels.batchnorm ~n:1 ~c:1 ~h:2 ~w:2 in
        let t =
          run_with p
            [
              ("x", [| 1.; 2.; 3.; 4. |]); ("gamma", [| 1. |]);
              ("beta", [| 0. |]);
            ]
        in
        let z = get p t "z" in
        let mean = Array.fold_left ( +. ) 0. z /. 4. in
        Alcotest.(check (float 1e-5)) "zero mean" 0.0 mean;
        Alcotest.(check bool) "unit-ish variance" true
          (abs_float (Array.fold_left (fun a v -> a +. (v *. v)) 0. z /. 4. -. 1.0)
           < 0.01));
    Alcotest.test_case "swiglu silu gate" `Quick (fun () ->
        (* x = [1], w1 = [g], w2 = [u]: z = silu(g) * u *)
        let p = Kernels.swiglu ~m:1 ~k:1 ~n:1 in
        let g = 0.7 and u = 2.0 in
        let t =
          run_with p [ ("x", [| 1. |]); ("w1", [| g |]); ("w2", [| u |]) ]
        in
        let silu = g /. (1. +. exp (-.g)) in
        check_floats "z" [| silu *. u |] (get p t "z"));
    Alcotest.test_case "relu_ffn clamps negatives" `Quick (fun () ->
        let p = Kernels.relu_ffn ~n:1 ~c:1 ~h:1 ~w:1 in
        let t =
          run_with p
            [ ("x", [| 2.0 |]); ("wt", [| -3.0 |]); ("bias", [| 1.0 |]) ]
        in
        (* t = 1 + 2*(-3) = -5 -> relu -> 0 *)
        check_floats "z" [| 0. |] (get p t "z"));
  ]

let storage_tests =
  [
    Alcotest.test_case "reused dimension collapses storage" `Quick (fun () ->
        let b = buffer "t" F32 [ 4; 8 ] ~reuse:[ false; true ] in
        Alcotest.(check (list int)) "storage shape" [ 4; 1 ]
          (Ir.Prog.storage_shape b);
        Alcotest.(check int) "bytes" (4 * 4) (Ir.Prog.buffer_bytes b));
    Alcotest.test_case "aliased arrays share storage" `Quick (fun () ->
        (* two arrays in one buffer: writing t1 then reading t2 sees the
           same values *)
        let text =
          "t f32 [4] heap -> t1, t2\n" ^ "x f32 [4] heap\n"
          ^ "z f32 [4] heap\n" ^ "inputs: x\noutputs: z\n" ^ "4\n"
          ^ "| t1[{0}] = x[{0}] * 3\n" ^ "4\n" ^ "| z[{0}] = t2[{0}] + 1\n"
        in
        let p = Ir.Parser.program text in
        let t = run_with p [ ("x", [| 1.; 2.; 3.; 4. |]) ] in
        check_floats "z" [| 4.; 7.; 10.; 13. |] (get p t "z"));
    Alcotest.test_case "guarded scope masks iterations" `Quick (fun () ->
        let text =
          "x f32 [3] heap\nz f32 [3] heap\ninputs: x\noutputs: z\n"
          ^ "4/3\n| z[{0}] = x[{0}] + 1\n"
        in
        let p = Ir.Parser.program text in
        let t = run_with p [ ("x", [| 1.; 2.; 3. |]) ] in
        check_floats "z" [| 2.; 3.; 4. |] (get p t "z"));
    Alcotest.test_case "itervals evaluate to iteration indices" `Quick
      (fun () ->
        let text =
          "z f32 [3, 2] heap\ninputs: \noutputs: z\n3\n| 2\n"
          ^ "| | z[{0},{1}] = idx(2*{0}+{1})\n"
        in
        let p = Ir.Parser.program text in
        let t = run_with p [] in
        check_floats "z" [| 0.; 1.; 2.; 3.; 4.; 5. |] (get p t "z"));
  ]

let edge_tests =
  [
    Alcotest.test_case "negative index offsets address earlier rows" `Quick
      (fun () ->
        (* z[i] = x[i+1] - x[i]: a finite difference with affine offsets *)
        let text =
          "x f32 [5] heap\nz f32 [4] heap\ninputs: x\noutputs: z\n"
          ^ "4\n| z[{0}] = x[{0}+1] - x[{0}]\n"
        in
        let p = Ir.Parser.program text in
        let t = run_with p [ ("x", [| 1.; 3.; 6.; 10.; 15. |]) ] in
        check_floats "z" [| 2.; 3.; 4.; 5. |] (get p t "z"));
    Alcotest.test_case "scaled iterators stride through arrays" `Quick
      (fun () ->
        (* gather every second element via 2*{0} *)
        let text =
          "x f32 [8] heap\nz f32 [4] heap\ninputs: x\noutputs: z\n"
          ^ "4\n| z[{0}] = x[2*{0}]\n"
        in
        let p = Ir.Parser.program text in
        let t =
          run_with p [ ("x", [| 0.; 1.; 2.; 3.; 4.; 5.; 6.; 7. |]) ]
        in
        check_floats "z" [| 0.; 2.; 4.; 6. |] (get p t "z"));
    Alcotest.test_case "min and neg and recip evaluate" `Quick (fun () ->
        let text =
          "x f32 [3] heap\nz f32 [3] heap\ninputs: x\noutputs: z\n"
          ^ "3\n| z[{0}] = min(neg(x[{0}]), recip(x[{0}]))\n"
        in
        let p = Ir.Parser.program text in
        let t = run_with p [ ("x", [| 1.; 2.; 0.5 |]) ] in
        check_floats "z" [| -1.; -2.; -0.5 |] (get p t "z"));
    Alcotest.test_case "deep nesting (6 loops) executes" `Quick (fun () ->
        let p = Kernels.conv2d ~n:1 ~f:2 ~c:2 ~h:3 ~w:3 ~kside:2 in
        let rng = Util.Rng.create 9 in
        let t = Interp.random_inputs rng p in
        Interp.run p t;
        let z = get p t "z" in
        Array.iter
          (fun v ->
            Alcotest.(check bool) "finite" true (Float.is_finite v))
          z);
    Alcotest.test_case "last write wins across nests" `Quick (fun () ->
        let text =
          "z f32 [4] heap\ninputs: \noutputs: z\n"
          ^ "4\n| z[{0}] = 1\n4\n| z[{0}] = 2\n"
        in
        let p = Ir.Parser.program text in
        let t = run_with p [] in
        check_floats "z" [| 2.; 2.; 2.; 2. |] (get p t "z"));
  ]

let equivalence_tests =
  [
    Alcotest.test_case "program equals itself" `Quick (fun () ->
        let p = Kernels.softmax ~n:3 ~m:5 in
        match Interp.equivalent p p with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "detects wrong constant" `Quick (fun () ->
        let p = Kernels.scale ~n:4 in
        let wrong =
          {
            p with
            body =
              [
                scope 4
                  [
                    Stmt
                      {
                        dst = { array = "z"; idx = [ Ir.Index.iter 0 ] };
                        rhs =
                          Bin
                            ( Mul,
                              Ref { array = "x"; idx = [ Ir.Index.iter 0 ] },
                              Const 2.4999 );
                      };
                  ];
              ];
          }
        in
        match Interp.equivalent p wrong with
        | Ok () -> Alcotest.fail "should differ"
        | Error _ -> ());
    Alcotest.test_case "detects illegal buffer reuse (Figure 5)" `Quick
      (fun () ->
        (* t is produced in one loop and consumed in a separate loop;
           collapsing t's dimension without fusing first corrupts the
           computation -- the paper's running counter-example. *)
        let text_ok =
          "x f32 [4] heap\nt f32 [4] heap\nz f32 [4] heap\n"
          ^ "inputs: x\noutputs: z\n" ^ "4\n| t[{0}] = x[{0}] * 2\n"
          ^ "4\n| z[{0}] = t[{0}] + 1\n"
        in
        let text_bad =
          "x f32 [4] heap\nt f32 [4:N] heap\nz f32 [4] heap\n"
          ^ "inputs: x\noutputs: z\n" ^ "4\n| t[{0}] = x[{0}] * 2\n"
          ^ "4\n| z[{0}] = t[{0}] + 1\n"
        in
        let p_ok = Ir.Parser.program text_ok in
        let p_bad = Ir.Parser.program text_bad in
        (match Interp.equivalent p_ok p_bad with
        | Ok () -> Alcotest.fail "illegal reuse must be detected"
        | Error _ -> ());
        (* after fusion, the same reuse is legal *)
        let text_fused_reuse =
          "x f32 [4] heap\nt f32 [4:N] heap\nz f32 [4] heap\n"
          ^ "inputs: x\noutputs: z\n" ^ "4\n| t[{0}] = x[{0}] * 2\n"
          ^ "| z[{0}] = t[{0}] + 1\n"
        in
        let p_fused = Ir.Parser.program text_fused_reuse in
        match Interp.equivalent p_ok p_fused with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
  ]

(* Property: all small kernels are deterministic under repeated runs. *)
let qcheck_deterministic =
  QCheck.Test.make ~count:30 ~name:"interpreter is deterministic"
    QCheck.(pair (int_bound (List.length Kernels.table3 - 1)) small_int)
    (fun (kidx, seed) ->
      let e = List.nth Kernels.table3 kidx in
      let p = e.Kernels.build_small () in
      let rng1 = Util.Rng.create seed and rng2 = Util.Rng.create seed in
      let t1 = Interp.random_inputs rng1 p in
      let t2 = Interp.random_inputs rng2 p in
      Interp.run p t1;
      Interp.run p t2;
      Interp.outputs_close p t1 t2 = Ok ())

let () =
  Alcotest.run "interp"
    [
      ("elementwise", elementwise_tests);
      ("reduction", reduction_tests);
      ("contraction", matmul_tests);
      ("normalization", norm_tests);
      ("storage", storage_tests);
      ("edge-cases", edge_tests);
      ("equivalence", equivalence_tests);
      ("qcheck", [ QCheck_alcotest.to_alcotest qcheck_deterministic ]);
    ]
