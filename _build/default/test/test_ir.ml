(* Tests for the IR core: index algebra, printing/parsing round trips,
   structural validation. *)

open Ir.Types

let ix = Ir.Index.iter

let index_tests =
  [
    Alcotest.test_case "normalize merges terms" `Quick (fun () ->
        let i = Ir.Index.normalize [ (2, 0); (3, 0); (1, 1) ] 5 in
        Alcotest.(check string) "repr" "5*{0}+{1}+5" (Ir.Index.to_string i));
    Alcotest.test_case "normalize drops zero coeffs" `Quick (fun () ->
        let i = Ir.Index.normalize [ (2, 0); (-2, 0) ] 0 in
        Alcotest.(check bool) "const" true (Ir.Index.is_const i);
        Alcotest.(check string) "repr" "0" (Ir.Index.to_string i));
    Alcotest.test_case "add and scale" `Quick (fun () ->
        let i = Ir.Index.add (ix 0) (Ir.Index.scale 4 (ix 1)) in
        Alcotest.(check int) "coeff0" 1 (Ir.Index.coeff_of 0 i);
        Alcotest.(check int) "coeff1" 4 (Ir.Index.coeff_of 1 i));
    Alcotest.test_case "subst implements tiling remap" `Quick (fun () ->
        (* {0} -> 4*{0} + {1}, deeper refs shift *)
        let remap d =
          if d = 0 then Ir.Index.add (ix ~coeff:4 0) (ix 1)
          else ix (d + 1)
        in
        let i = Ir.Index.normalize [ (1, 0); (2, 1) ] 3 in
        let i' = Ir.Index.subst remap i in
        Alcotest.(check string) "repr" "4*{0}+{1}+2*{2}+3"
          (Ir.Index.to_string i'));
    Alcotest.test_case "eval" `Quick (fun () ->
        let i = Ir.Index.normalize [ (4, 0); (1, 1) ] (-2) in
        Alcotest.(check int) "value" (4 * 3) (Ir.Index.eval [| 3; 2 |] i + 0)
        |> ignore;
        Alcotest.(check int) "value" 12 (Ir.Index.eval [| 3; 2 |] i));
    Alcotest.test_case "value_range" `Quick (fun () ->
        let i = Ir.Index.normalize [ (1, 0); (1, 1) ] 0 in
        let lo, hi = Ir.Index.value_range (fun d -> [| 4; 3 |].(d)) i in
        Alcotest.(check (pair int int)) "range" (0, 5) (lo, hi));
    Alcotest.test_case "shift_depths" `Quick (fun () ->
        let i = Ir.Index.normalize [ (1, 0); (1, 2) ] 0 in
        let i' = Ir.Index.shift_depths ~from:1 ~delta:1 i in
        Alcotest.(check string) "repr" "{0}+{3}" (Ir.Index.to_string i'));
  ]

let roundtrip_kernel (e : Kernels.entry) () =
  let p = e.build_small () in
  let text = Ir.Printer.program p in
  let p' = Ir.Parser.program text in
  let text' = Ir.Printer.program p' in
  Alcotest.(check string) ("round trip " ^ e.label) text text';
  (* structural equality of the whole program *)
  Alcotest.(check bool) "structurally equal" true (p = p')

let roundtrip_tests =
  List.map
    (fun (e : Kernels.entry) ->
      Alcotest.test_case ("roundtrip " ^ e.label) `Quick (roundtrip_kernel e))
    (Kernels.table3 @ Kernels.snitch_micro)

let parse_tests =
  [
    Alcotest.test_case "scope flags parse" `Quick (fun () ->
        let text =
          "x f32 [8, 4] heap\n" ^ "z f32 [8, 4] heap\n" ^ "inputs: x\n"
          ^ "outputs: z\n" ^ "8:p\n" ^ "| 4:v\n"
          ^ "| | z[{0},{1}] = x[{0},{1}] * 2\n"
        in
        let p = Ir.Parser.program text in
        match p.body with
        | [ Scope s1 ] -> (
            Alcotest.(check bool) "par" true (s1.annot = Par);
            match s1.body with
            | [ Scope s2 ] -> Alcotest.(check bool) "vec" true (s2.annot = Vec)
            | _ -> Alcotest.fail "bad structure")
        | _ -> Alcotest.fail "bad structure");
    Alcotest.test_case "guarded scope parses" `Quick (fun () ->
        let text =
          "x f32 [300] heap\nz f32 [300] heap\ninputs: x\noutputs: z\n"
          ^ "320:b/300\n| z[{0}] = x[{0}] * 2\n"
        in
        let p = Ir.Parser.program text in
        match p.body with
        | [ Scope s ] ->
            Alcotest.(check int) "size" 320 s.size;
            Alcotest.(check (option int)) "guard" (Some 300) s.guard
        | _ -> Alcotest.fail "bad structure");
    Alcotest.test_case "reuse dim and alias list parse" `Quick (fun () ->
        let text =
          "t f32 [8, 4:N] stack -> t1, t2\n"
          ^ "z f32 [8, 4] heap\ninputs: t1\noutputs: z\n" ^ "8\n" ^ "| 4\n"
          ^ "| | z[{0},{1}] = t1[{0},{1}] + t2[{0},{1}]\n"
        in
        let p = Ir.Parser.program text in
        let b = Ir.Prog.buffer_by_name p "t" in
        Alcotest.(check (list bool)) "reuse" [ false; true ] b.reuse;
        Alcotest.(check (list string)) "arrays" [ "t1"; "t2" ] b.arrays);
    Alcotest.test_case "idx() expression parses" `Quick (fun () ->
        let text =
          "z f32 [4, 4] heap\ninputs: \noutputs: z\n4\n| 4\n"
          ^ "| | z[{0},{1}] = idx(4*{0}+{1})\n"
        in
        let p = Ir.Parser.program text in
        let s =
          match p.body with
          | [ Scope { body = [ Scope { body = [ Stmt s ]; _ } ]; _ } ] -> s
          | _ -> Alcotest.fail "bad structure"
        in
        match s.rhs with
        | IterVal i ->
            Alcotest.(check string) "idx" "4*{0}+{1}" (Ir.Index.to_string i)
        | _ -> Alcotest.fail "expected IterVal");
    Alcotest.test_case "reject malformed stmt" `Quick (fun () ->
        Alcotest.check_raises "parse error"
          (Ir.Parser.Parse_error "statement must start with destination: \"= x\"")
          (fun () -> ignore (Ir.Parser.parse_stmt_line "= x")));
  ]

let validate_tests =
  [
    Alcotest.test_case "all kernels validate" `Quick (fun () ->
        List.iter
          (fun (e : Kernels.entry) ->
            match Ir.Validate.check (e.build_small ()) with
            | [] -> ()
            | errs ->
                Alcotest.failf "%s: %s" e.label
                  (String.concat "; "
                     (List.map Ir.Validate.error_to_string errs)))
          (Kernels.table3 @ Kernels.snitch_micro));
    Alcotest.test_case "catches out-of-bounds access" `Quick (fun () ->
        let p : Ir.Prog.t =
          {
            buffers = [ buffer "x" F32 [ 4 ]; buffer "z" F32 [ 4 ] ];
            inputs = [ "x" ];
            outputs = [ "z" ];
            body =
              [
                scope 4
                  [
                    Stmt
                      {
                        dst = { array = "z"; idx = [ Ir.Index.iter 0 ] };
                        rhs =
                          Ref
                            {
                              array = "x";
                              idx =
                                [ Ir.Index.normalize [ (1, 0) ] 1 (* {0}+1 *) ];
                            };
                      };
                  ];
              ];
          }
        in
        Alcotest.(check bool) "invalid" false (Ir.Validate.is_valid p));
    Alcotest.test_case "catches unknown array" `Quick (fun () ->
        let p : Ir.Prog.t =
          {
            buffers = [ buffer "z" F32 [ 4 ] ];
            inputs = [];
            outputs = [ "z" ];
            body =
              [
                scope 4
                  [
                    Stmt
                      {
                        dst = { array = "z"; idx = [ Ir.Index.iter 0 ] };
                        rhs = Ref { array = "ghost"; idx = [ Ir.Index.iter 0 ] };
                      };
                  ];
              ];
          }
        in
        Alcotest.(check bool) "invalid" false (Ir.Validate.is_valid p));
    Alcotest.test_case "catches deep depth reference" `Quick (fun () ->
        let p : Ir.Prog.t =
          {
            buffers = [ buffer "z" F32 [ 4 ] ];
            inputs = [];
            outputs = [ "z" ];
            body =
              [
                scope 4
                  [
                    Stmt
                      {
                        dst = { array = "z"; idx = [ Ir.Index.iter 0 ] };
                        rhs = IterVal (Ir.Index.iter 3);
                      };
                  ];
              ];
          }
        in
        Alcotest.(check bool) "invalid" false (Ir.Validate.is_valid p));
    Alcotest.test_case "flops counts arithmetic" `Quick (fun () ->
        let p = Kernels.matmul ~m:2 ~k:3 ~n:4 in
        (* 2*4 inits contribute 0 flops, 2*4*3 iterations of add+mul *)
        Alcotest.(check int) "flops" (2 * 4 * 3 * 2) (Ir.Prog.total_flops p));
  ]

let path_tests =
  [
    Alcotest.test_case "node_at / depth_of_path" `Quick (fun () ->
        let p = Kernels.matmul ~m:2 ~k:3 ~n:4 in
        (match Ir.Prog.node_at p [ 0 ] with
        | Scope s -> Alcotest.(check int) "m loop" 2 s.size
        | Stmt _ -> Alcotest.fail "expected scope");
        (match Ir.Prog.node_at p [ 0; 0; 1 ] with
        | Scope s -> Alcotest.(check int) "k loop" 3 s.size
        | Stmt _ -> Alcotest.fail "expected scope");
        Alcotest.(check int) "depth of k loop" 2
          (Ir.Prog.depth_of_path p [ 0; 0; 1 ]));
    Alcotest.test_case "rewrite_at splices" `Quick (fun () ->
        let p = Kernels.relu ~n:2 ~m:3 in
        let p' = Ir.Prog.rewrite_at p [ 0 ] (fun n -> [ n; n ]) in
        Alcotest.(check int) "two copies" 2 (List.length p'.body));
    Alcotest.test_case "enclosing_sizes" `Quick (fun () ->
        let p = Kernels.matmul ~m:2 ~k:3 ~n:4 in
        let sizes = Ir.Prog.enclosing_sizes p [ 0; 0; 1; 0 ] in
        Alcotest.(check (list int)) "sizes" [ 2; 4; 3 ] (Array.to_list sizes));
  ]

(* Property: printing then parsing preserves program structure for random
   transformed variants.  (Random programs come from applying random
   transformations to kernels, giving realistic diversity.) *)
let qcheck_roundtrip =
  let gen_prog =
    QCheck.Gen.(
      let* kidx = int_bound (List.length Kernels.table3 - 1) in
      let e = List.nth Kernels.table3 kidx in
      let* steps = int_bound 4 in
      let* seed = int_bound 1_000_000 in
      let rng = Util.Rng.create seed in
      let caps = Transform.Xforms.cpu_caps () in
      let prog = ref (e.build_small ()) in
      for _ = 1 to steps do
        let insts = Transform.Xforms.all caps !prog in
        if insts <> [] then begin
          let i = Util.Rng.int rng (List.length insts) in
          prog := (List.nth insts i).apply !prog
        end
      done;
      return !prog)
  in
  QCheck.Test.make ~count:50 ~name:"print/parse roundtrip on transformed programs"
    (QCheck.make gen_prog)
    (fun p ->
      let text = Ir.Printer.program p in
      let p' = Ir.Parser.program text in
      p = p')

let () =
  Alcotest.run "ir"
    [
      ("index", index_tests);
      ("roundtrip", roundtrip_tests);
      ("parse", parse_tests);
      ("validate", validate_tests);
      ("paths", path_tests);
      ("qcheck", [ QCheck_alcotest.to_alcotest qcheck_roundtrip ]);
    ]
