test/test_search.ml: Alcotest Array Cpu_model Desc Interp Ir Kernels List Machine Printf Search Snitch_sim String Transform
