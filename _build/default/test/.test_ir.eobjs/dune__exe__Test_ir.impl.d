test/test_ir.ml: Alcotest Array Ir Kernels List QCheck QCheck_alcotest String Transform Util
