test/test_interp.ml: Alcotest Array Float Hashtbl Interp Ir Kernels List QCheck QCheck_alcotest Util
