test/test_gen.ml: Alcotest Array Codegen Float Interp Ir List Printf QCheck QCheck_alcotest String Transform Util
