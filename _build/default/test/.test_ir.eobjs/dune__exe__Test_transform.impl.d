test/test_transform.ml: Alcotest Array Engine Interp Ir Kernels List Machine Printf QCheck QCheck_alcotest Search String Transform Util Xforms
