test/test_util.ml: Alcotest Array Fun Printf Util
