test/test_baselines.ml: Alcotest Baselines Interp Ir Kernels List Machine Printf String Transform
