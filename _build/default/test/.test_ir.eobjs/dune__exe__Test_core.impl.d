test/test_core.ml: Alcotest Codegen Game Interp Ir Kernels List Machine Perfdojo Printf Rl Search
