test/test_codegen.ml: Alcotest Codegen Ir Kernels List Machine Search String
