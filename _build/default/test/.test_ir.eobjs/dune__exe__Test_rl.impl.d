test/test_rl.ml: Alcotest Array Float Interp Kernels List Machine Printf Rl Search Transform Util
