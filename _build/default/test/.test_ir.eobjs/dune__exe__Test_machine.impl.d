test/test_machine.ml: Alcotest Cpu_model Desc Float Gpu_model Ir Kernels List Machine Printf Search Snitch_sim Transform
