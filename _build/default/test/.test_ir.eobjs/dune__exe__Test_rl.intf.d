test/test_rl.mli:
