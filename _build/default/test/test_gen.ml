(* Property tests over randomly *generated* programs (not the fixed
   kernel set): a small generator produces valid multi-nest programs with
   elementwise chains, broadcasts and reductions, and the suite fuzzes
   the printer/parser, the interpreter and — most importantly — random
   transformation walks, which must preserve semantics on any program the
   generator can produce. *)

open Ir.Types

(* ------------------------------------------------------------------ *)
(* Random program generator                                            *)
(* ------------------------------------------------------------------ *)

(* Numerically safe operators only (no Div/Recip/Log/Sqrt: tolerance
   comparisons would be dominated by near-singular values). *)
let safe_binops = [| Add; Sub; Mul; Max; Min |]
let safe_unops = [| Neg; Relu |]

let gen_program (rng : Util.Rng.t) : Ir.Prog.t =
  let n = [| 2; 3; 4; 6; 8 |].(Util.Rng.int rng 5) in
  let m = [| 2; 3; 4; 5; 8 |].(Util.Rng.int rng 5) in
  let n_temps = 1 + Util.Rng.int rng 3 in
  let temp i = Printf.sprintf "t%d" i in
  let buffers =
    buffer "x" F32 [ n; m ]
    :: buffer "y" F32 [ n ]
    :: buffer "z" F32 [ n; m ]
    :: List.init n_temps (fun i ->
           (* temps are full matrices or per-row vectors *)
           if Util.Rng.bool rng then buffer (temp i) F32 [ n; m ]
           else buffer (temp i) F32 [ n ])
  in
  let rank name =
    List.length
      (List.find (fun (b : buffer) -> b.bname = name) buffers).shape
  in
  let access name : access =
    if rank name = 2 then
      { array = name; idx = [ Ir.Index.iter 0; Ir.Index.iter 1 ] }
    else { array = name; idx = [ Ir.Index.iter 0 ] }
  in
  (* expression over sources readable at this point *)
  let rec gen_expr depth sources : expr =
    let leaf () =
      match Util.Rng.int rng 4 with
      | 0 -> Const (Util.Rng.float_range rng (-2.0) 2.0)
      | 1 -> IterVal (Ir.Index.iter (Util.Rng.int rng 2))
      | _ -> Ref (access (Util.Rng.choose rng (Array.of_list sources)))
    in
    if depth = 0 || Util.Rng.int rng 3 = 0 then leaf ()
    else if Util.Rng.bool rng then
      Bin
        ( Util.Rng.choose rng safe_binops,
          gen_expr (depth - 1) sources,
          gen_expr (depth - 1) sources )
    else Un (Util.Rng.choose rng safe_unops, gen_expr (depth - 1) sources)
  in
  (* a chain of nests: each defines one temp (or finally z) from x, y and
     earlier temps; some nests are 2-D elementwise, some are row
     reductions into a 1-D temp *)
  let body = ref [] in
  let sources = ref [ "x" ] in
  for i = 0 to n_temps - 1 do
    let name = temp i in
    if rank name = 2 then begin
      let stmt =
        Stmt { dst = access name; rhs = gen_expr 2 !sources }
      in
      body := scope n [ scope m [ stmt ] ] :: !body
    end
    else begin
      (* reduction over the row dimension, with explicit init *)
      let two_d = List.filter (fun s -> rank s = 2) !sources in
      let src = Util.Rng.choose rng (Array.of_list two_d) in
      let op = Util.Rng.choose rng [| Add; Max |] in
      let init = match op with Max -> Float.neg_infinity | _ -> 0.0 in
      body :=
        scope n
          [
            Stmt { dst = access name; rhs = Const init };
            scope m
              [
                Stmt
                  {
                    dst = access name;
                    rhs = Bin (op, Ref (access name), Ref (access src));
                  };
              ];
          ]
        :: !body
    end;
    sources := name :: !sources
  done;
  (* final elementwise nest writing z, allowed to broadcast y and 1-D
     temps across the row *)
  let final =
    scope n
      [ scope m [ Stmt { dst = access "z"; rhs = gen_expr 2 ("y" :: !sources) } ] ]
  in
  body := final :: !body;
  { buffers; inputs = [ "x"; "y" ]; outputs = [ "z" ]; body = List.rev !body }

let arbitrary_program =
  QCheck.make
    ~print:(fun p -> Ir.Printer.program p)
    QCheck.Gen.(
      let* seed = int_bound 1_000_000 in
      return (gen_program (Util.Rng.create seed)))

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_valid =
  QCheck.Test.make ~count:200 ~name:"generated programs validate"
    arbitrary_program
    (fun p -> Ir.Validate.is_valid p)

let prop_roundtrip =
  QCheck.Test.make ~count:200 ~name:"generated programs round-trip"
    arbitrary_program
    (fun p -> Ir.Parser.program (Ir.Printer.program p) = p)

let prop_interp_deterministic =
  QCheck.Test.make ~count:100 ~name:"interpreter deterministic on generated"
    arbitrary_program
    (fun p -> Interp.equivalent ~trials:1 p p = Ok ())

let prop_codegen_nonempty =
  QCheck.Test.make ~count:100 ~name:"codegen emits C for generated programs"
    arbitrary_program
    (fun p -> String.length (Codegen.program p) > 50)

(* The central fuzz: random transformation walks on random programs. *)
let prop_walk caps cname =
  QCheck.Test.make ~count:120
    ~name:("random " ^ cname ^ " walks preserve semantics on generated")
    QCheck.(pair arbitrary_program small_int)
    (fun (p0, seed) ->
      let rng = Util.Rng.create (seed + 13) in
      let steps = 1 + Util.Rng.int rng 8 in
      let p = ref p0 in
      for _ = 1 to steps do
        let insts = Transform.Xforms.all caps !p in
        if insts <> [] then begin
          let i =
            List.nth insts (Util.Rng.int rng (List.length insts))
          in
          p := i.apply !p
        end
      done;
      Ir.Validate.is_valid !p
      && Interp.equivalent ~tol:1e-3 p0 !p = Ok ())

(* Every instance the discovery offers on a generated program must apply
   without raising and yield an equivalent program. *)
let prop_one_step caps cname =
  QCheck.Test.make ~count:60
    ~name:("every offered move is sound on generated (" ^ cname ^ ")")
    arbitrary_program
    (fun p ->
      List.for_all
        (fun (i : Transform.Xforms.instance) ->
          let p' = i.apply p in
          Ir.Validate.is_valid p'
          && Interp.equivalent ~tol:1e-3 ~trials:1 p p' = Ok ())
        (Transform.Xforms.all caps p))

let caps_cpu = Transform.Xforms.cpu_caps ()
let caps_gpu = Transform.Xforms.gpu_caps ()
let caps_snitch = Transform.Xforms.snitch_caps ()

let () =
  Alcotest.run "generated-programs"
    [
      ( "qcheck",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_valid;
            prop_roundtrip;
            prop_interp_deterministic;
            prop_codegen_nonempty;
            prop_walk caps_cpu "cpu";
            prop_walk caps_gpu "gpu";
            prop_walk caps_snitch "snitch";
            prop_one_step caps_cpu "cpu";
            prop_one_step caps_snitch "snitch";
          ] );
    ]
