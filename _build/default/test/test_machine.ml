(* Tests for the performance models.  Absolute numbers are model outputs,
   so the tests assert *relationships* the models must reproduce: the
   optimization effects the paper's transformations trade on. *)

open Machine

let cpu = Desc.xeon_e5_2695v4
let avx = Desc.avx512_cpu
let sn = Desc.snitch_cluster
let gh = Desc.gh200
let mi = Desc.mi300a

let caps_cpu = Desc.caps_of (Desc.Cpu avx)
let caps_snitch = Desc.caps_of (Desc.Snitch sn)
let caps_gpu = Desc.caps_of (Desc.Gpu gh)

let apply_named caps prog name =
  match
    List.find_opt
      (fun i -> Transform.Xforms.describe i = name)
      (Transform.Xforms.all caps prog)
  with
  | Some inst -> inst.apply prog
  | None -> Alcotest.failf "move %s not applicable" name

let faster msg a b =
  if not (a < b) then Alcotest.failf "%s: expected %.3e < %.3e" msg a b

let cpu_tests =
  [
    Alcotest.test_case "vectorization speeds up elementwise" `Quick (fun () ->
        let p = Kernels.add ~n:1024 ~m:1024 in
        let split = apply_named caps_cpu p "split_scope([0,0] factor 16)" in
        let vec = apply_named caps_cpu split "vectorize([0,0,0])" in
        faster "vec < scalar" (Cpu_model.time avx vec) (Cpu_model.time avx p));
    Alcotest.test_case "parallelization speeds up independent rows" `Quick
      (fun () ->
        let p = Kernels.relu ~n:4096 ~m:1024 in
        let par = apply_named caps_cpu p "parallelize([0])" in
        faster "par < seq" (Cpu_model.time avx par) (Cpu_model.time avx p);
        (* and not by more than the core count *)
        let ratio = Cpu_model.time avx p /. Cpu_model.time avx par in
        Alcotest.(check bool) "bounded by cores" true
          (ratio <= float_of_int avx.cores +. 1.0));
    Alcotest.test_case "unrolling hides reduction latency" `Quick (fun () ->
        (* gemv-style: tile output rows by 4, sink, unroll: 4 chains *)
        let p = Kernels.gemv ~m:512 ~n:512 in
        let t = Search.Passes.tile_sink_unroll caps_cpu 4 p in
        faster "tiled+unrolled < plain" (Cpu_model.time avx t)
          (Cpu_model.time avx p));
    Alcotest.test_case "smaller footprint is cheaper (reuse_dims)" `Quick
      (fun () ->
        (* producer/consumer through a big temporary vs collapsed one *)
        let text reuse =
          Printf.sprintf
            ("x f32 [4096, 4096] heap\nt f32 [4096, 4096%s] heap\n"
           ^^ "z f32 [4096, 4096] heap\ninputs: x\noutputs: z\n"
           ^^ "4096\n| 4096\n| | t[{0},{1}] = x[{0},{1}] * 2\n"
           ^^ "| | z[{0},{1}] = t[{0},{1}] + 1\n")
            reuse
        in
        let big = Ir.Parser.program (text "") in
        let small = Ir.Parser.program (text ":N") in
        faster "collapsed temp < materialized temp"
          (Cpu_model.time avx small) (Cpu_model.time avx big));
    Alcotest.test_case "strided access is penalized" `Quick (fun () ->
        let row_major =
          Ir.Parser.program
            ("x f32 [2048, 2048] heap\nz f32 [2048, 2048] heap\n"
           ^ "inputs: x\noutputs: z\n2048\n| 2048\n"
           ^ "| | z[{0},{1}] = x[{0},{1}] + 1\n")
        in
        let transposed =
          Ir.Parser.program
            ("x f32 [2048, 2048] heap\nz f32 [2048, 2048] heap\n"
           ^ "inputs: x\noutputs: z\n2048\n| 2048\n"
           ^ "| | z[{1},{0}] = x[{1},{0}] + 1\n")
        in
        faster "sequential < strided"
          (Cpu_model.time cpu row_major)
          (Cpu_model.time cpu transposed));
    Alcotest.test_case "breakdown is consistent with time" `Quick (fun () ->
        let p = Kernels.softmax ~n:256 ~m:256 in
        let b = Cpu_model.breakdown avx p in
        let cycles = Float.max b.comp b.mem +. b.ovh in
        Alcotest.(check (float 1e-9)) "time = cycles/freq"
          (cycles /. (avx.freq_ghz *. 1e9))
          (Cpu_model.time avx p);
        Alcotest.(check bool) "components positive" true
          (b.comp > 0.0 && b.mem > 0.0 && b.ovh > 0.0));
    Alcotest.test_case "gflops is positive and finite" `Quick (fun () ->
        List.iter
          (fun (e : Kernels.entry) ->
            let g = Machine.gflops (Desc.Cpu cpu) (e.build ()) in
            Alcotest.(check bool) (e.label ^ " finite") true
              (Float.is_finite g && g > 0.0))
          Kernels.table3);
  ]

let snitch_tests =
  [
    Alcotest.test_case "ssr removes load issue slots" `Quick (fun () ->
        let p = Kernels.scale ~n:1024 in
        let s = apply_named caps_snitch p "enable_ssr([0])" in
        faster "ssr < no ssr" (Snitch_sim.time sn s) (Snitch_sim.time sn p));
    Alcotest.test_case "frep removes loop overhead" `Quick (fun () ->
        let p = Kernels.scale ~n:1024 in
        let s = apply_named caps_snitch p "enable_ssr([0])" in
        let f = apply_named caps_snitch s "enable_frep([0])" in
        faster "frep < ssr only" (Snitch_sim.time sn f) (Snitch_sim.time sn s));
    Alcotest.test_case "latency-bound reduction reaches ~25% of peak" `Quick
      (fun () ->
        (* the paper's motivating observation for the heuristic pass *)
        let p = Kernels.dot ~n:4096 in
        let g = Search.Passes.greedy caps_snitch p in
        let frac = Snitch_sim.peak_fraction sn g in
        Alcotest.(check bool)
          (Printf.sprintf "0.2 <= %.3f <= 0.3" frac)
          true
          (frac >= 0.2 && frac <= 0.3));
    Alcotest.test_case "elementwise with ssr+frep near peak" `Quick (fun () ->
        let p = Kernels.scale ~n:4096 in
        let g = Search.Passes.greedy caps_snitch p in
        let frac = Snitch_sim.peak_fraction sn g in
        Alcotest.(check bool)
          (Printf.sprintf "%.3f >= 0.9" frac)
          true (frac >= 0.9));
    Alcotest.test_case "tile-by-4 heuristic hides FP latency on gemv" `Quick
      (fun () ->
        let p = Kernels.gemv ~m:64 ~n:64 in
        let g = Search.Passes.greedy caps_snitch p in
        let h = Search.Passes.heuristic caps_snitch p in
        faster "heuristic < greedy" (Snitch_sim.time sn h)
          (Snitch_sim.time sn g));
    Alcotest.test_case "strategy ladder: naive <= greedy <= heuristic" `Quick
      (fun () ->
        List.iter
          (fun (e : Kernels.entry) ->
            let p = e.build () in
            let frac q = Snitch_sim.peak_fraction sn q in
            let n = frac (Search.Passes.naive caps_snitch p) in
            let g = frac (Search.Passes.greedy caps_snitch p) in
            let h = frac (Search.Passes.heuristic caps_snitch p) in
            Alcotest.(check bool)
              (Printf.sprintf "%s: %.2f <= %.2f (+eps) and %.2f <= %.2f (+eps)"
                 e.label n g g h)
              true
              (n <= g +. 1e-9 && g <= h +. 0.05))
          Kernels.snitch_micro);
    Alcotest.test_case "peak fraction never exceeds 1" `Quick (fun () ->
        List.iter
          (fun (e : Kernels.entry) ->
            let h = Search.Passes.heuristic caps_snitch (e.build ()) in
            let f = Snitch_sim.peak_fraction sn h in
            Alcotest.(check bool)
              (Printf.sprintf "%s %.3f <= 1" e.label f)
              true (f <= 1.0 +. 1e-9))
          Kernels.snitch_micro);
  ]

let gpu_tests =
  [
    Alcotest.test_case "unmapped program runs on slow host" `Quick (fun () ->
        let p = Kernels.add ~n:3072 ~m:4096 in
        let mapped = Search.Passes.gpu_heuristic caps_gpu p in
        faster "gpu mapped < host" (Gpu_model.time gh mapped)
          (Gpu_model.time gh p);
        Alcotest.(check bool) "large factor" true
          (Gpu_model.time gh p /. Gpu_model.time gh mapped > 5.0));
    Alcotest.test_case "vectorized loads improve bandwidth" `Quick (fun () ->
        let p = Kernels.mul ~n:6 ~m:14336 in
        let v = Search.Passes.gpu_heuristic caps_gpu p in
        let s = Search.Passes.gpu_heuristic ~vectorize:false caps_gpu p in
        faster "vec < scalar" (Gpu_model.time gh v) (Gpu_model.time gh s));
    Alcotest.test_case "ragged block pays wavefront padding" `Quick (fun () ->
        (* block of 300 on a 64-wide wavefront machine: 300/320 efficiency
           (the paper's batchnorm discussion) *)
        let text =
          "x f32 [8192, 300] heap\nz f32 [8192, 300] heap\n"
          ^ "inputs: x\noutputs: z\n8192:g\n| 300:b\n"
          ^ "| | z[{0},{1}] = x[{0},{1}] * 2\n"
        in
        let ragged = Ir.Parser.program text in
        let text_aligned =
          "x f32 [8192, 320] heap\nz f32 [8192, 320] heap\n"
          ^ "inputs: x\noutputs: z\n8192:g\n| 320:b\n"
          ^ "| | z[{0},{1}] = x[{0},{1}] * 2\n"
        in
        let aligned = Ir.Parser.program text_aligned in
        (* aligned does 6.7% more work yet loses less than the ragged
           wavefront underutilization would suggest; compare per-element
           cost instead of totals *)
        let per_elem t n = t /. float_of_int n in
        Alcotest.(check bool) "padding costs something" true
          (per_elem (Gpu_model.time mi ragged) 300
           > per_elem (Gpu_model.time mi aligned) 320));
    Alcotest.test_case "launch overhead dominates tiny kernels" `Quick
      (fun () ->
        let p = Kernels.add ~n:2 ~m:4 in
        let mapped = Search.Passes.gpu_heuristic caps_gpu p in
        Alcotest.(check bool) "time >= launch overhead" true
          (Gpu_model.time gh mapped >= gh.launch_overhead_s));
    Alcotest.test_case "host loop relaunches kernels" `Quick (fun () ->
        (* an outer sequential host loop around a grid scope multiplies
           the launch overhead *)
        let base =
          "x f32 [64, 1024] heap\nz f32 [64, 1024] heap\n"
          ^ "inputs: x\noutputs: z\n"
        in
        let launched_once =
          Ir.Parser.program
            (base ^ "64:g\n| 1024:b\n| | z[{0},{1}] = x[{0},{1}] * 2\n")
        in
        let relaunched =
          Ir.Parser.program
            (base ^ "64\n| 1024:g\n| | z[{0},{1}] = x[{0},{1}] * 2\n")
        in
        faster "one launch < 64 launches"
          (Gpu_model.time gh launched_once)
          (Gpu_model.time gh relaunched));
  ]

(* Model-sanity properties that hold for any reasonable cost model. *)
let sanity_tests =
  [
    Alcotest.test_case "time grows with problem size" `Quick (fun () ->
        List.iter
          (fun target ->
            let t1 = Machine.time target (Kernels.relu ~n:512 ~m:512) in
            let t2 = Machine.time target (Kernels.relu ~n:2048 ~m:2048) in
            Alcotest.(check bool)
              (Machine.Desc.target_name target ^ " monotone")
              true (t2 > t1))
          [ Desc.Cpu cpu; Desc.Cpu avx; Desc.Snitch sn ]);
    Alcotest.test_case "times are finite and positive everywhere" `Quick
      (fun () ->
        List.iter
          (fun target ->
            List.iter
              (fun (e : Kernels.entry) ->
                let t = Machine.time target (e.build ()) in
                Alcotest.(check bool)
                  (Printf.sprintf "%s/%s" (Machine.Desc.target_name target)
                     e.label)
                  true
                  (Float.is_finite t && t > 0.0))
              (Kernels.table3 @ Kernels.snitch_micro))
          [
            Desc.Cpu cpu; Desc.Cpu avx; Desc.Cpu Desc.grace_arm;
            Desc.Gpu gh; Desc.Gpu mi; Desc.Snitch sn;
          ]);
    Alcotest.test_case "optimized schedules never model slower than 10x"
      `Quick (fun () ->
        (* passes should never catastrophically regress a kernel *)
        List.iter
          (fun (e : Kernels.entry) ->
            let p = e.build () in
            let t0 = Snitch_sim.time sn p in
            let th = Snitch_sim.time sn (Search.Passes.heuristic caps_snitch p)
            in
            Alcotest.(check bool)
              (Printf.sprintf "%s: %.2e vs %.2e" e.label th t0)
              true
              (th <= t0 *. 1.01))
          Kernels.snitch_micro);
    Alcotest.test_case "snitch cycles scale linearly in trip count" `Quick
      (fun () ->
        let c1 = Snitch_sim.cycles sn (Kernels.scale ~n:1024) in
        let c2 = Snitch_sim.cycles sn (Kernels.scale ~n:2048) in
        let ratio = c2 /. c1 in
        Alcotest.(check bool)
          (Printf.sprintf "ratio %.3f ~ 2" ratio)
          true
          (ratio > 1.9 && ratio < 2.1));
    Alcotest.test_case "gpu grid+block beats grid-only" `Quick (fun () ->
        let text blocked =
          "x f32 [4096, 1024] heap\nz f32 [4096, 1024] heap\n"
          ^ "inputs: x\noutputs: z\n4096:g\n"
          ^ (if blocked then "| 1024:b\n" else "| 1024\n")
          ^ "| | z[{0},{1}] = x[{0},{1}] * 2\n"
        in
        let with_block = Ir.Parser.program (text true) in
        let without = Ir.Parser.program (text false) in
        faster "blocked < unblocked"
          (Gpu_model.time gh with_block)
          (Gpu_model.time gh without));
  ]

let caps_tests =
  [
    Alcotest.test_case "caps expose target-appropriate moves" `Quick
      (fun () ->
        let c = Desc.caps_of (Desc.Cpu avx) in
        Alcotest.(check (list int)) "avx512 lanes" [ 16 ] c.vec_lanes;
        Alcotest.(check bool) "cpu parallel" true c.can_parallelize;
        Alcotest.(check bool) "cpu not gpu" false c.gpu;
        let s = Desc.caps_of (Desc.Snitch sn) in
        Alcotest.(check bool) "snitch flag" true s.snitch;
        Alcotest.(check (list int)) "no vectors on snitch" [] s.vec_lanes;
        let g = Desc.caps_of (Desc.Gpu gh) in
        Alcotest.(check bool) "gpu flag" true g.gpu;
        Alcotest.(check int) "block limit" gh.max_threads_per_block
          g.max_block);
  ]

let () =
  Alcotest.run "machine"
    [
      ("cpu-model", cpu_tests);
      ("snitch-sim", snitch_tests);
      ("gpu-model", gpu_tests);
      ("sanity", sanity_tests);
      ("caps", caps_tests);
    ]
