(* Tests for the RL substrate: neural network correctness (gradient
   check), embedding properties, replay buffer, DQN target computation
   and the PerfLLM loop end-to-end on a small kernel. *)

let nn_tests =
  [
    Alcotest.test_case "forward computes an MLP" `Quick (fun () ->
        let rng = Util.Rng.create 1 in
        let net = Rl.Nn.create rng [ 3; 4; 2 ] in
        let out = Rl.Nn.forward net [| 0.5; -0.2; 1.0 |] in
        Alcotest.(check int) "output size" 2 (Array.length out);
        Array.iter
          (fun v ->
            Alcotest.(check bool) "finite" true (Float.is_finite v))
          out);
    Alcotest.test_case "backward matches finite differences" `Quick
      (fun () ->
        let rng = Util.Rng.create 7 in
        let net = Rl.Nn.create rng [ 4; 6; 1 ] in
        let x = Array.init 4 (fun i -> 0.3 *. float_of_int (i + 1)) in
        (* loss = 0.5 * out^2; dLoss/dOut = out *)
        let loss () =
          let o = (Rl.Nn.forward net x).(0) in
          0.5 *. o *. o
        in
        Rl.Nn.zero_grad net;
        let tape, out = Rl.Nn.forward_tape net x in
        Rl.Nn.backward net tape [| out.(0) |];
        (* compare the analytic gradient of a few weights against central
           differences *)
        let eps = 1e-5 in
        let check_weight l o i =
          let layer = net.layers.(l) in
          let orig = layer.w.(o).(i) in
          layer.w.(o).(i) <- orig +. eps;
          let lp = loss () in
          layer.w.(o).(i) <- orig -. eps;
          let lm = loss () in
          layer.w.(o).(i) <- orig;
          let numeric = (lp -. lm) /. (2.0 *. eps) in
          let analytic = layer.gw.(o).(i) in
          Alcotest.(check (float 1e-3))
            (Printf.sprintf "dW[%d][%d][%d]" l o i)
            numeric analytic
        in
        check_weight 0 0 0;
        check_weight 0 3 2;
        check_weight 1 0 1;
        check_weight 1 0 5);
    Alcotest.test_case "adam reduces a simple regression loss" `Quick
      (fun () ->
        let rng = Util.Rng.create 3 in
        let net = Rl.Nn.create rng [ 2; 8; 1 ] in
        (* fit f(x) = x0 + 2*x1 on a few points *)
        let data =
          [ ([| 0.1; 0.3 |], 0.7); ([| -0.5; 0.2 |], -0.1);
            ([| 0.4; -0.4 |], -0.4); ([| 0.0; 0.5 |], 1.0) ]
        in
        let epoch_loss () =
          List.fold_left
            (fun acc (x, y) ->
              let o = (Rl.Nn.forward net x).(0) in
              acc +. ((o -. y) *. (o -. y)))
            0.0 data
        in
        let initial = epoch_loss () in
        for _ = 1 to 300 do
          Rl.Nn.zero_grad net;
          List.iter
            (fun (x, y) ->
              let tape, out = Rl.Nn.forward_tape net x in
              Rl.Nn.backward net tape [| out.(0) -. y |])
            data;
          Rl.Nn.adam_step ~lr:5e-3 net
        done;
        let final = epoch_loss () in
        Alcotest.(check bool)
          (Printf.sprintf "loss %.4f -> %.4f" initial final)
          true
          (final < initial /. 10.0));
    Alcotest.test_case "copy_weights makes nets agree" `Quick (fun () ->
        let rng = Util.Rng.create 5 in
        let a = Rl.Nn.create rng [ 3; 5; 1 ] in
        let b = Rl.Nn.create rng [ 3; 5; 1 ] in
        let x = [| 0.2; -0.1; 0.7 |] in
        Alcotest.(check bool) "differ initially" true
          (Rl.Nn.forward a x <> Rl.Nn.forward b x);
        Rl.Nn.copy_weights ~src:a ~dst:b;
        Alcotest.(check (float 1e-12)) "agree after copy"
          (Rl.Nn.forward a x).(0)
          (Rl.Nn.forward b x).(0));
  ]

let embed_tests =
  [
    Alcotest.test_case "embedding is deterministic" `Quick (fun () ->
        let p = Kernels.softmax ~n:8 ~m:16 in
        Alcotest.(check bool) "equal" true (Rl.Embed.embed p = Rl.Embed.embed p));
    Alcotest.test_case "different programs embed differently" `Quick
      (fun () ->
        let a = Rl.Embed.embed (Kernels.softmax ~n:8 ~m:16) in
        let b = Rl.Embed.embed (Kernels.matmul ~m:8 ~k:8 ~n:8) in
        Alcotest.(check bool) "differ" true (a <> b));
    Alcotest.test_case "transformed program embeds differently" `Quick
      (fun () ->
        let p = Kernels.relu ~n:8 ~m:8 in
        let caps = Transform.Xforms.cpu_caps () in
        let p' = (List.hd (Transform.Xforms.all caps p)).apply p in
        Alcotest.(check bool) "differ" true
          (Rl.Embed.embed p <> Rl.Embed.embed p'));
    Alcotest.test_case "annotations move structural features" `Quick
      (fun () ->
        let p = Kernels.relu ~n:8 ~m:8 in
        let caps = Transform.Xforms.cpu_caps () in
        let par =
          (List.find
             (fun (i : Transform.Xforms.instance) -> i.xname = "parallelize")
             (Transform.Xforms.all caps p))
            .apply p
        in
        let e = Rl.Embed.embed p and e' = Rl.Embed.embed par in
        (* the Par counter feature lives at ngram_dims + 2 *)
        Alcotest.(check bool) "par feature grew" true
          (e'.(Rl.Embed.ngram_dims + 2) > e.(Rl.Embed.ngram_dims + 2)));
    Alcotest.test_case "stop action pair is symmetric" `Quick (fun () ->
        let s = Rl.Embed.embed (Kernels.relu ~n:4 ~m:4) in
        let pair = Rl.Embed.action_pair s s in
        Alcotest.(check int) "length" (2 * Rl.Embed.dim) (Array.length pair);
        Alcotest.(check bool) "halves equal" true
          (Array.sub pair 0 Rl.Embed.dim = Array.sub pair Rl.Embed.dim
                                              Rl.Embed.dim));
  ]

let replay_tests =
  [
    Alcotest.test_case "ring buffer overwrites oldest" `Quick (fun () ->
        let buf = Rl.Replay.create 4 in
        for i = 1 to 6 do
          Rl.Replay.add buf
            {
              action = [| float_of_int i |];
              reward = float_of_int i;
              next_state = [||];
              next_actions = [||];
              terminal = false;
            }
        done;
        Alcotest.(check int) "capped size" 4 (Rl.Replay.size buf);
        let rng = Util.Rng.create 0 in
        let sampled = Rl.Replay.sample buf rng 64 in
        List.iter
          (fun (tr : Rl.Replay.transition) ->
            Alcotest.(check bool) "only recent survive" true (tr.reward > 2.0))
          sampled);
  ]

let mk_transition ?(terminal = false) ~reward ~next_actions () :
    Rl.Replay.transition =
  let z = Array.make (2 * Rl.Embed.dim) 0.1 in
  { action = z; reward; next_state = Array.make Rl.Embed.dim 0.1;
    next_actions; terminal }

let dqn_tests =
  [
    Alcotest.test_case "max-bellman target takes max(r, gamma*future)"
      `Quick (fun () ->
        let cfg = { Rl.Dqn.default_config with max_bellman = true } in
        let agent = Rl.Dqn.create ~cfg 1 in
        (* terminal transition: future = 0, so target = reward *)
        let tr = mk_transition ~terminal:true ~reward:5.0 ~next_actions:[||] ()
        in
        Alcotest.(check (float 1e-9)) "terminal" 5.0
          (Rl.Dqn.target_of agent tr);
        (* non-terminal with some candidate action: target >= reward *)
        let tr2 =
          mk_transition ~reward:3.0
            ~next_actions:[| Array.make (2 * Rl.Embed.dim) 0.2 |]
            ()
        in
        Alcotest.(check bool) "max semantics" true
          (Rl.Dqn.target_of agent tr2 >= 3.0));
    Alcotest.test_case "standard bellman adds discounted future" `Quick
      (fun () ->
        let cfg = { Rl.Dqn.default_config with max_bellman = false } in
        let agent = Rl.Dqn.create ~cfg 1 in
        let pair = Array.make (2 * Rl.Embed.dim) 0.2 in
        let tr = mk_transition ~reward:3.0 ~next_actions:[| pair |] () in
        let future = Rl.Dqn.q_value agent.target pair in
        Alcotest.(check (float 1e-6)) "r + gamma*Q"
          (3.0 +. (agent.cfg.gamma *. future))
          (Rl.Dqn.target_of agent tr));
    Alcotest.test_case "epsilon anneals from start to end" `Quick (fun () ->
        let agent = Rl.Dqn.create 1 in
        Alcotest.(check (float 1e-9)) "initial" agent.cfg.eps_start
          (Rl.Dqn.epsilon agent);
        agent.steps <- agent.cfg.eps_decay * 2;
        Alcotest.(check (float 1e-9)) "final" agent.cfg.eps_end
          (Rl.Dqn.epsilon agent));
    Alcotest.test_case "training reduces TD loss on a fixed buffer" `Quick
      (fun () ->
        let agent = Rl.Dqn.create 2 in
        let rng = Util.Rng.create 3 in
        for _ = 1 to 64 do
          let pair =
            Array.init (2 * Rl.Embed.dim) (fun _ ->
                Util.Rng.float_range rng (-0.5) 0.5)
          in
          Rl.Dqn.remember agent
            {
              action = pair;
              reward = pair.(0) +. 1.0;
              next_state = Array.make Rl.Embed.dim 0.0;
              next_actions = [||];
              terminal = true;
            }
        done;
        let first = Rl.Dqn.train_step agent in
        let last = ref first in
        for _ = 1 to 200 do
          last := Rl.Dqn.train_step agent
        done;
        Alcotest.(check bool)
          (Printf.sprintf "loss %.4f -> %.4f" first !last)
          true (!last < first));
  ]

let reinforce_tests =
  [
    Alcotest.test_case "reinforce improves a snitch micro-kernel" `Quick
      (fun () ->
        let target = Machine.Desc.Snitch Machine.Desc.snitch_cluster in
        let caps = Machine.caps target in
        let p = Kernels.scale ~n:256 in
        let cfg =
          {
            Rl.Reinforce.default_config with
            episodes = 8;
            max_steps = 8;
            action_cap = 16;
          }
        in
        let r =
          Rl.Reinforce.optimize ~cfg ~seed:5 caps
            (fun q -> Machine.time target q)
            p
        in
        Alcotest.(check bool) "improved" true
          (r.best_time < Machine.time target p);
        match Interp.equivalent ~tol:1e-4 p r.best with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "softmax distribution sums to one" `Quick (fun () ->
        let probs = Rl.Reinforce.softmax [| 1.0; 2.0; -0.5; 0.0 |] in
        let sum = Array.fold_left ( +. ) 0.0 probs in
        Alcotest.(check (float 1e-9)) "sum" 1.0 sum;
        Array.iter
          (fun q -> Alcotest.(check bool) "positive" true (q > 0.0))
          probs);
  ]

let prioritized_tests =
  [
    Alcotest.test_case "prioritized sampling follows TD priorities" `Quick
      (fun () ->
        let buf = Rl.Replay.create 8 in
        for i = 0 to 3 do
          Rl.Replay.add buf
            {
              action = [| float_of_int i |];
              reward = float_of_int i;
              next_state = [||];
              next_actions = [||];
              terminal = true;
            }
        done;
        (* crank one transition's priority way up *)
        Rl.Replay.update_priority buf 2 100.0;
        List.iter (fun i -> Rl.Replay.update_priority buf i 0.0)
          [ 0; 1; 3 ];
        let rng = Util.Rng.create 7 in
        let drawn = Rl.Replay.sample_prioritized buf rng 200 in
        let hot =
          List.length (List.filter (fun (i, _) -> i = 2) drawn)
        in
        Alcotest.(check bool)
          (Printf.sprintf "%d/200 from the hot index" hot)
          true
          (hot > 180));
    Alcotest.test_case "prioritized dqn trains without error" `Quick
      (fun () ->
        let cfg = { Rl.Dqn.default_config with prioritized = true } in
        let agent = Rl.Dqn.create ~cfg 3 in
        let rng = Util.Rng.create 1 in
        for _ = 1 to 64 do
          let pair =
            Array.init (2 * Rl.Embed.dim) (fun _ ->
                Util.Rng.float_range rng (-0.5) 0.5)
          in
          Rl.Dqn.remember agent
            {
              action = pair;
              reward = pair.(0);
              next_state = Array.make Rl.Embed.dim 0.0;
              next_actions = [||];
              terminal = true;
            }
        done;
        let first = Rl.Dqn.train_step agent in
        let last = ref first in
        for _ = 1 to 150 do
          last := Rl.Dqn.train_step agent
        done;
        Alcotest.(check bool)
          (Printf.sprintf "loss %.4f -> %.4f" first !last)
          true (!last < first));
  ]

let perfllm_tests =
  [
    Alcotest.test_case "perfllm improves a snitch micro-kernel" `Quick
      (fun () ->
        let sn = Machine.Desc.snitch_cluster in
        let target = Machine.Desc.Snitch sn in
        let caps = Machine.caps target in
        let p = Kernels.scale ~n:256 in
        let cfg =
          {
            Rl.Perfllm.default_config with
            episodes = 8;
            max_steps = 8;
            action_cap = 16;
          }
        in
        let result, _agent =
          Rl.Perfllm.optimize ~cfg ~seed:5 caps
            (fun q -> Machine.time target q)
            p
        in
        Alcotest.(check bool) "improved" true
          (result.best_time < Machine.time target p);
        (* the discovered schedule must be semantics-preserving *)
        (match Interp.equivalent ~tol:1e-4 p result.best with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
        (* and replayable from the recorded moves *)
        let replayed, applied =
          Search.Stochastic.replay_skipping caps p result.best_moves
        in
        Alcotest.(check int) "moves replay" (List.length result.best_moves)
          (List.length applied);
        Alcotest.(check bool) "same schedule" true (replayed = result.best));
    Alcotest.test_case "episode_best is monotone" `Quick (fun () ->
        let target = Machine.Desc.Snitch Machine.Desc.snitch_cluster in
        let caps = Machine.caps target in
        let p = Kernels.vecsum ~n:128 in
        let cfg =
          { Rl.Perfllm.default_config with episodes = 6; max_steps = 6 }
        in
        let result, _ =
          Rl.Perfllm.optimize ~cfg ~seed:2 caps
            (fun q -> Machine.time target q)
            p
        in
        let ok = ref true in
        for i = 1 to Array.length result.episode_best - 1 do
          if result.episode_best.(i) > result.episode_best.(i - 1) +. 1e-15
          then ok := false
        done;
        Alcotest.(check bool) "monotone" true !ok);
  ]

let () =
  Alcotest.run "rl"
    [
      ("nn", nn_tests);
      ("embed", embed_tests);
      ("replay", replay_tests);
      ("dqn", dqn_tests);
      ("reinforce", reinforce_tests);
      ("prioritized", prioritized_tests);
      ("perfllm", perfllm_tests);
    ]
