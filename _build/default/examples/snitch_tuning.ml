(* Bringing up a new accelerator (§4.1): the Snitch RISC-V core with SSR
   and FREP extensions.  The vendor ships *transformations* (enable_ssr,
   enable_frep) and a cycle-approximate simulator — not a tuned library —
   and the generic machinery does the rest.

   Run with:  dune exec examples/snitch_tuning.exe *)

open Perfdojo

let () =
  let sn = Machine.Desc.snitch_cluster in
  let target = Machine.Desc.Snitch sn in
  Printf.printf "target: %s (1 FPU, %d-cycle FP latency, %d SSR streams)\n\n"
    (Machine.Desc.target_name target)
    sn.sn_fp_latency sn.sn_ssr_streams;

  Printf.printf "%-14s %10s %10s %10s %10s   (fraction of peak)\n" "kernel"
    "naive" "greedy" "heuristic" "search";
  List.iter
    (fun (e : Kernels.entry) ->
      let p = e.build () in
      let frac q = Machine.Snitch_sim.peak_fraction sn q in
      let n = Perfdojo.optimize Naive target p in
      let g = Perfdojo.optimize Greedy target p in
      let h = Perfdojo.optimize Heuristic target p in
      let s =
        Perfdojo.optimize
          (Annealing { budget = 120; space = Search.Stochastic.Heuristic })
          target p
      in
      Printf.printf "%-14s %10.3f %10.3f %10.3f %10.3f\n" e.label
        (frac n.schedule) (frac g.schedule) (frac h.schedule)
        (frac s.schedule))
    Kernels.snitch_micro;

  (* Show what the pipeline produced for one kernel, down to the
     SSR/FREP-annotated C. *)
  let p = Kernels.gemv ~m:64 ~n:64 in
  let h = Perfdojo.optimize Heuristic target p in
  print_endline "\ngemv schedule found by the heuristic pass:";
  print_endline (Ir.Printer.body h.schedule);
  print_endline "\ngenerated Snitch C:";
  print_string (Codegen.program h.schedule);

  (* The latency-hiding story in one picture: the same kernel with and
     without the tile-by-4 trick. *)
  let g = Perfdojo.optimize Greedy target p in
  Printf.printf
    "\ngreedy (SSR+FREP only):      %.3f of peak\n\
     heuristic (+ tile-4 unroll): %.3f of peak\n"
    (Machine.Snitch_sim.peak_fraction sn g.schedule)
    (Machine.Snitch_sim.peak_fraction sn h.schedule)
