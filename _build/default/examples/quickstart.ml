(* Quickstart: the 5-minute tour of the public API.

   Run with:  dune exec examples/quickstart.exe *)

open Perfdojo

let () =
  (* 1. Pick a kernel (or build your own — see custom_kernel.ml). *)
  let prog = Kernels.softmax ~n:1024 ~m:256 in
  print_endline "=== the PerfDojo textual IR (Figure 3b) ===";
  print_string (Ir.Printer.program prog);

  (* 2. Pick a target machine.  Hardware knowledge enters only as the
     set of transformations the target exposes. *)
  let target = Machine.Desc.Cpu Machine.Desc.avx512_cpu in
  Printf.printf "\nnaive runtime on %s: %.3e s\n"
    (Machine.Desc.target_name target)
    (Machine.time target prog);

  (* 3. Play the performance game manually: list moves, apply some. *)
  let game = Game.start target prog in
  let moves = Game.moves game in
  Printf.printf "\n%d applicable transformations; first five:\n"
    (List.length moves);
  List.iteri
    (fun i (_, d) -> if i < 5 then Printf.printf "  %s\n" d)
    moves;
  let t = Game.play_named game "join_scopes([0,3])" in
  Printf.printf "\nafter join_scopes([0,3]): %.3e s\n" t;
  let t = Game.play_named game "parallelize([0])" in
  Printf.printf "after parallelize([0]):   %.3e s\n" t;

  (* ... and undo the fusion while keeping the parallelization: the
     history is non-destructive. *)
  (match Game.undo_at game 1 with
  | Some _ -> print_endline "undid the fusion, parallelization kept"
  | None -> print_endline "(undo refused: later move depended on it)");

  (* 4. Every move is semantics-preserving by construction; check it
     numerically anyway, like the paper does. *)
  (match Game.verify game with
  | Ok () -> print_endline "numerical equivalence to original: OK"
  | Error e -> failwith e);

  (* 5. Or let the machine play: a one-call automatic optimization. *)
  let outcome = Perfdojo.optimize_best ~budget:150 target prog in
  Printf.printf "\nautomatic optimization: %.3e s (%.1fx speedup)\n"
    outcome.time_s
    (Machine.time target prog /. outcome.time_s);

  (* 6. Generate C for the winning schedule. *)
  print_endline "\n=== generated C (truncated) ===";
  let c = Codegen.program outcome.schedule in
  let lines = String.split_on_char '\n' c in
  List.iteri (fun i l -> if i < 25 then print_endline l) lines;
  if List.length lines > 25 then print_endline "..."
