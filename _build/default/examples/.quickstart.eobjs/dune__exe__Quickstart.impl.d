examples/quickstart.ml: Codegen Game Ir Kernels List Machine Perfdojo Printf String
