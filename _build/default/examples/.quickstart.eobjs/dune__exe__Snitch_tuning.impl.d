examples/snitch_tuning.ml: Codegen Ir Kernels List Machine Perfdojo Printf Search
