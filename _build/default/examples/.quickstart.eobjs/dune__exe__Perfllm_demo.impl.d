examples/perfllm_demo.ml: Array Interp Ir Kernels List Machine Perfdojo Printf Rl String
