examples/snitch_tuning.mli:
