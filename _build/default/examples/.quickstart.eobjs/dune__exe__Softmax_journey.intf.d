examples/softmax_journey.mli:
