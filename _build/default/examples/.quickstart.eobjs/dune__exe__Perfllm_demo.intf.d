examples/perfllm_demo.mli:
