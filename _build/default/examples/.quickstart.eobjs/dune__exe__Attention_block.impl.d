examples/attention_block.ml: Array Baselines Float Hashtbl Interp Ir List Machine Perfdojo Printf Util
