examples/attention_block.mli:
