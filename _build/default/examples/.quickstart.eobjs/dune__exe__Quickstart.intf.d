examples/quickstart.mli:
