examples/custom_kernel.ml: Array Float Hashtbl Interp Ir List Machine Perfdojo Printf Util
