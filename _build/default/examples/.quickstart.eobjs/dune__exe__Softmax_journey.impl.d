examples/softmax_journey.ml: Codegen Game Ir Kernels List Machine Perfdojo Printf
