(* PerfLLM (§3): a DQN agent learns to optimize a kernel with no prior
   hardware knowledge — hardware enters only as the transformation
   library and the runtime signal.

   Run with:  dune exec examples/perfllm_demo.exe *)

open Perfdojo

let () =
  let target = Machine.Desc.Gpu Machine.Desc.gh200 in
  let caps = Machine.caps target in
  let prog = Kernels.mul ~n:6 ~m:14336 in
  let t0 = Machine.time target prog in
  Printf.printf "kernel: elementwise mul 6x14336 on %s\n"
    (Machine.Desc.target_name target);
  Printf.printf "naive (host) runtime: %.3e s\n\n" t0;

  let cfg =
    {
      Rl.Perfllm.default_config with
      episodes = 16;
      max_steps = 16;
      action_cap = 24;
      dqn =
        {
          Rl.Dqn.default_config with
          max_bellman = true;
          double_dqn = true;
          dueling = true;
        };
    }
  in
  let result, agent =
    Rl.Perfllm.optimize ~cfg ~seed:7 caps (Machine.time target) prog
  in

  print_endline "learning curve (best runtime after each episode):";
  Array.iteri
    (fun ep t ->
      let bar_len =
        int_of_float (40.0 *. (log (t0 /. t) /. log (t0 /. result.best_time +. 1e-9)))
      in
      Printf.printf "  ep %2d  %.3e s  %s\n" ep t
        (String.make (max 0 (min 40 bar_len)) '#'))
    result.episode_best;

  Printf.printf "\nbest schedule (%.1fx over naive, %d evaluations):\n"
    (t0 /. result.best_time) result.evaluations;
  print_endline (Ir.Printer.body result.best);

  print_endline "\nmoves the agent discovered:";
  List.iter (Printf.printf "  %s\n") result.best_moves;

  (* the agent's policy is a Q function over action embeddings; show the
     final epsilon (exploration has annealed) *)
  Printf.printf "\nfinal exploration epsilon: %.3f (%d training steps)\n"
    (Rl.Dqn.epsilon agent) agent.steps;

  (* semantics are guaranteed by construction; verify anyway *)
  match Interp.equivalent (Kernels.mul ~n:6 ~m:14336) result.best with
  | Ok () -> print_endline "numerical equivalence: OK"
  | Error e -> failwith e
