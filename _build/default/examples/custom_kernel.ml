(* Extending the library: define a new operator in the textual IR, check
   it against a reference implementation, then optimize it for two
   targets.  This is the workflow for covering new ONNX operators.

   Run with:  dune exec examples/custom_kernel.exe *)

open Perfdojo

(* A "hardswish"-style activation followed by a row sum — a composite
   operator no library ships as one kernel:
     t = x * min(max(x + 3, 0), 6) / 6
     z[i] = sum_j t[i, j]                                              *)
let n = 512
let m = 256

let kernel_text =
  Printf.sprintf
    ("x f32 [%d, %d] heap\n" ^^ "t f32 [%d, %d] heap\n"
   ^^ "z f32 [%d] heap\n" ^^ "inputs: x\noutputs: z\n" ^^ "%d\n"
   ^^ "| %d\n"
   ^^ "| | t[{0},{1}] = x[{0},{1}] * min(max(x[{0},{1}] + 3, 0), 6) / 6\n"
   ^^ "%d\n" ^^ "| z[{0}] = 0\n" ^^ "| %d\n"
   ^^ "| | z[{0}] = z[{0}] + t[{0},{1}]\n")
    n m n m n n m n m

let reference x =
  let z = Array.make n 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to m - 1 do
      let v = x.((i * m) + j) in
      z.(i) <- z.(i) +. (v *. Float.min (Float.max (v +. 3.0) 0.0) 6.0 /. 6.0)
    done
  done;
  z

let () =
  (* parse and validate *)
  let prog = Ir.Parser.program kernel_text in
  Ir.Validate.check_exn prog;
  print_endline "parsed and validated:";
  print_endline (Ir.Printer.body prog);

  (* check against the independent OCaml reference on random data *)
  let rng = Util.Rng.create 123 in
  let t = Interp.alloc_tensors prog in
  let x = Hashtbl.find t "x" in
  for i = 0 to Array.length x - 1 do
    x.(i) <- Util.Rng.float_range rng (-6.0) 6.0
  done;
  let expect = reference x in
  Interp.run prog t;
  let z = Hashtbl.find t "z" in
  Array.iteri
    (fun i v ->
      if abs_float (v -. expect.(i)) > 1e-3 *. Float.max 1.0 (abs_float v)
      then failwith (Printf.sprintf "mismatch at %d: %g vs %g" i v expect.(i)))
    z;
  print_endline "\nmatches the independent OCaml reference: OK";

  (* optimize for two very different targets from the same definition *)
  List.iter
    (fun target ->
      let o = Perfdojo.optimize_best ~budget:150 target prog in
      Printf.printf "\n%s: %.3e s -> %.3e s (%.1fx)\n"
        (Machine.Desc.target_name target)
        (Machine.time target prog)
        o.time_s
        (Machine.time target prog /. o.time_s);
      (* the fused/reused schedule, not the naive two-pass one *)
      print_endline (Ir.Printer.body o.schedule))
    [
      Machine.Desc.Cpu Machine.Desc.xeon_e5_2695v4;
      Machine.Desc.Snitch Machine.Desc.snitch_cluster;
    ]
