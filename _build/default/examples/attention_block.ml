(* Whole-block optimization: the paper's introduction motivates bespoke
   fused kernels (flash attention) that library-centric stacks cannot
   provide.  This example builds a single-head attention score block —
   S = Q*K^T / sqrt(d), P = softmax(S), O = P*V — as ONE PerfDojo
   program, and compares optimizing it whole against a per-operator
   library schedule.

   Run with:  dune exec examples/attention_block.exe *)

open Perfdojo

let seq = 256 (* sequence length *)
let dim = 64 (* head dimension *)

(* The whole block as one program.  K is stored transposed (column-major
   scores access) as libraries do for attention. *)
let attention : Ir.Prog.t =
  let scale = 1.0 /. sqrt (float_of_int dim) in
  let text =
    Printf.sprintf
      ("q f32 [%d, %d] heap\n" ^^ "k f32 [%d, %d] heap\n"
     ^^ "v f32 [%d, %d] heap\n" ^^ "s f32 [%d, %d] heap\n"
     ^^ "mx f32 [%d] heap\n" ^^ "sm f32 [%d] heap\n"
     ^^ "p f32 [%d, %d] heap\n" ^^ "o f32 [%d, %d] heap\n"
     ^^ "inputs: q, k, v\noutputs: o\n"
     (* scores: s[i,j] = scale * sum_d q[i,d] * k[j,d] *)
     ^^ "%d\n| %d\n| | s[{0},{1}] = 0\n| | %d\n"
     ^^ "| | | s[{0},{1}] = s[{0},{1}] + q[{0},{2}] * k[{1},{2}]\n"
     ^^ "| | s[{0},{1}] = s[{0},{1}] * %.17g\n"
     (* row softmax *)
     ^^ "%d\n| mx[{0}] = -inf\n| %d\n"
     ^^ "| | mx[{0}] = max(mx[{0}], s[{0},{1}])\n"
     ^^ "| sm[{0}] = 0\n| %d\n"
     ^^ "| | p[{0},{1}] = exp(s[{0},{1}] - mx[{0}])\n"
     ^^ "| | sm[{0}] = sm[{0}] + p[{0},{1}]\n"
     ^^ "| %d\n| | p[{0},{1}] = p[{0},{1}] / sm[{0}]\n"
     (* output: o = p * v *)
     ^^ "%d\n| %d\n| | o[{0},{1}] = 0\n| | %d\n"
     ^^ "| | | o[{0},{1}] = o[{0},{1}] + p[{0},{2}] * v[{2},{1}]\n")
      seq dim seq dim seq dim seq seq seq seq seq seq seq dim (* buffers *)
      seq seq dim scale (* scores *)
      seq seq seq seq (* softmax *)
      seq dim seq (* output *)
  in
  Ir.Parser.program text

(* An independent OCaml reference, for confidence. *)
let reference q k v =
  let s = Array.make_matrix seq seq 0.0 in
  let scale = 1.0 /. sqrt (float_of_int dim) in
  for i = 0 to seq - 1 do
    for j = 0 to seq - 1 do
      for d = 0 to dim - 1 do
        s.(i).(j) <- s.(i).(j) +. (q.((i * dim) + d) *. k.((j * dim) + d))
      done;
      s.(i).(j) <- s.(i).(j) *. scale
    done
  done;
  let o = Array.make (seq * dim) 0.0 in
  for i = 0 to seq - 1 do
    let mx = Array.fold_left Float.max neg_infinity s.(i) in
    let exps = Array.map (fun x -> exp (x -. mx)) s.(i) in
    let sum = Array.fold_left ( +. ) 0.0 exps in
    for j = 0 to seq - 1 do
      let pij = exps.(j) /. sum in
      for d = 0 to dim - 1 do
        o.((i * dim) + d) <- o.((i * dim) + d) +. (pij *. v.((j * dim) + d))
      done
    done
  done;
  o

let () =
  Ir.Validate.check_exn attention;
  Printf.printf "attention block: seq=%d dim=%d, %d statements, %.2e flops\n"
    seq dim
    (List.length (Ir.Prog.stmts_under attention.body))
    (float_of_int (Ir.Prog.total_flops attention));

  (* numerical check against the OCaml reference *)
  let rng = Util.Rng.create 2024 in
  let t = Interp.alloc_tensors attention in
  List.iter
    (fun name ->
      let store = Hashtbl.find t name in
      for i = 0 to Array.length store - 1 do
        store.(i) <- Util.Rng.float_range rng (-1.0) 1.0
      done)
    [ "q"; "k"; "v" ];
  let expect =
    reference (Hashtbl.find t "q") (Hashtbl.find t "k") (Hashtbl.find t "v")
  in
  Interp.run attention t;
  let o = Hashtbl.find t "o" in
  Array.iteri
    (fun i v ->
      if abs_float (v -. expect.(i)) > 1e-3 then
        failwith (Printf.sprintf "mismatch at %d: %g vs %g" i v expect.(i)))
    o;
  print_endline "matches the independent OCaml reference: OK\n";

  (* whole-block optimization vs the per-operator library schedule *)
  List.iter
    (fun target ->
      let lib = Baselines.pytorch target attention in
      let lib_time = Baselines.time target lib in
      let ours = Perfdojo.optimize_best ~budget:250 target attention in
      Printf.printf "%-22s library(per-op) %.3e s   whole-block %.3e s   (%.2fx)\n"
        (Machine.Desc.target_name target)
        lib_time ours.time_s (lib_time /. ours.time_s))
    [
      Machine.Desc.Cpu Machine.Desc.xeon_e5_2695v4;
      Machine.Desc.Cpu Machine.Desc.grace_arm;
      Machine.Desc.Gpu Machine.Desc.gh200;
    ];

  (* show where the whole-block win comes from on the CPU *)
  let target = Machine.Desc.Cpu Machine.Desc.xeon_e5_2695v4 in
  let ours = Perfdojo.optimize_best ~budget:250 target attention in
  print_endline "\nwhole-block x86 schedule:";
  print_endline (Ir.Printer.body ours.schedule)
