(* The manual transformation-centric workflow of Figure 2 / Figure 4:
   a human engineer optimizes softmax step by step, watching the modelled
   runtime after every move, undoing a move that did not pay off, and
   finally emitting C.

   Run with:  dune exec examples/softmax_journey.exe *)

open Perfdojo

let play game name =
  let t = Game.play_named game name in
  Printf.printf "  %-42s -> %.3e s\n" name t;
  t

let () =
  let target = Machine.Desc.Cpu Machine.Desc.avx512_cpu in
  let prog = Kernels.softmax ~n:24576 ~m:512 in
  let game = Game.start target prog in
  Printf.printf "start: %.3e s\n" (Machine.time target prog);

  (* Fuse the exponentiation with the running sum: one pass over the
     row instead of two. *)
  ignore (play game "join_scopes([0,3])");

  (* The row temporaries are privatized per row; move them to the
     stack. *)
  ignore (play game "set_storage(mx -> stack)");
  ignore (play game "set_storage(s -> stack)");

  (* Rows are independent: parallelize. *)
  ignore (play game "parallelize([0])");

  (* Try tiling the max-reduction loop... *)
  let before = Machine.time target (Game.state game) in
  let after = play game "split_scope([0,1] factor 16)" in
  if after >= before then begin
    (* ...it did not help (the reduction cannot vectorize): undo it.
       The history is non-destructive, every later state is rebuilt. *)
    match Game.undo game with
    | Some _ -> print_endline "  (undone: tiling the max loop did not pay)"
    | None -> ()
  end;

  (* Vectorize the division loop: tile by the AVX-512 width first, the
     vectorize move is only offered once the trip count matches. *)
  ignore (play game "split_scope([0,4] factor 16)");
  ignore (play game "vectorize([0,4,0])");

  Printf.printf "\nmoves played:\n";
  List.iter (Printf.printf "  %s\n") (Game.moves_played game);

  (match Game.verify game with
  | Ok () -> print_endline "\nnumerical check vs original: OK"
  | Error e -> failwith e);

  print_endline "\nfinal schedule:";
  print_endline (Ir.Printer.body (Game.state game));
  print_endline "\ngenerated C:";
  print_string (Codegen.program (Game.state game))
