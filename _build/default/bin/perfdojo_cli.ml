(* perfdojo: command-line driver.

   perfdojo list
   perfdojo show softmax [--target x86] [--c]
   perfdojo moves softmax --target snitch
   perfdojo optimize softmax --target gh200 --strategy annealing --budget 500
   perfdojo verify softmax --target x86 --strategy heuristic
   perfdojo targets *)

open Cmdliner
open Perfdojo

let all_kernels = Kernels.table3 @ Kernels.snitch_micro

let find_kernel name =
  match
    List.find_opt (fun (e : Kernels.entry) -> e.label = name) all_kernels
  with
  | Some e -> e
  | None ->
      Printf.eprintf "unknown kernel %S; try `perfdojo list`\n" name;
      exit 1

let target_of_string = function
  | "x86" | "xeon" -> Machine.Desc.Cpu Machine.Desc.xeon_e5_2695v4
  | "avx512" -> Machine.Desc.Cpu Machine.Desc.avx512_cpu
  | "arm" | "grace" -> Machine.Desc.Cpu Machine.Desc.grace_arm
  | "riscv" -> Machine.Desc.Cpu Machine.Desc.riscv_scalar
  | "snitch" -> Machine.Desc.Snitch Machine.Desc.snitch_cluster
  | "gh200" -> Machine.Desc.Gpu Machine.Desc.gh200
  | "mi300a" -> Machine.Desc.Gpu Machine.Desc.mi300a
  | s ->
      Printf.eprintf
        "unknown target %S (x86, avx512, arm, riscv, snitch, gh200, mi300a)\n"
        s;
      exit 1

let strategy_of_string budget = function
  | "naive" -> Naive
  | "greedy" -> Greedy
  | "heuristic" -> Heuristic
  | "sampling" -> Sampling { budget; space = Search.Stochastic.Heuristic }
  | "sampling-edges" -> Sampling { budget; space = Search.Stochastic.Edges }
  | "annealing" -> Annealing { budget; space = Search.Stochastic.Heuristic }
  | "annealing-edges" -> Annealing { budget; space = Search.Stochastic.Edges }
  | "rl" ->
      Rl_search
        {
          Rl.Perfllm.default_config with
          episodes = max 4 (budget / 24);
          max_steps = 20;
        }
  | s ->
      Printf.eprintf "unknown strategy %S\n" s;
      exit 1

(* shared options *)
let target_arg =
  let doc = "Target machine: x86, avx512, arm, riscv, snitch, gh200, mi300a."
  in
  Arg.(value & opt string "x86" & info [ "target"; "t" ] ~docv:"TARGET" ~doc)

let kernel_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"KERNEL")

let budget_arg =
  let doc = "Search evaluation budget." in
  Arg.(value & opt int 300 & info [ "budget"; "b" ] ~docv:"N" ~doc)

let strategy_arg =
  let doc =
    "Strategy: naive, greedy, heuristic, sampling[-edges], \
     annealing[-edges], rl."
  in
  Arg.(
    value & opt string "heuristic" & info [ "strategy"; "s" ] ~docv:"S" ~doc)

let seed_arg =
  let doc = "Random seed." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

(* ------------------------------------------------------------------ *)
(* list                                                                *)
(* ------------------------------------------------------------------ *)

let list_cmd =
  let run () =
    Printf.printf "%-14s %-18s %s\n" "kernel" "shape" "description";
    List.iter
      (fun (e : Kernels.entry) ->
        Printf.printf "%-14s %-18s %s\n" e.label e.shape_desc e.description)
      all_kernels
  in
  Cmd.v (Cmd.info "list" ~doc:"List the built-in kernels (Table 3 + Snitch).")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* targets                                                             *)
(* ------------------------------------------------------------------ *)

let targets_cmd =
  let run () =
    List.iter
      (fun (name, t) ->
        Printf.printf "%-8s %s\n" name (Machine.Desc.target_name t))
      [
        ("x86", target_of_string "x86");
        ("avx512", target_of_string "avx512");
        ("arm", target_of_string "arm");
        ("riscv", target_of_string "riscv");
        ("snitch", target_of_string "snitch");
        ("gh200", target_of_string "gh200");
        ("mi300a", target_of_string "mi300a");
      ]
  in
  Cmd.v (Cmd.info "targets" ~doc:"List the modelled machines.")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* show                                                                *)
(* ------------------------------------------------------------------ *)

let show_cmd =
  let run kernel emit_c =
    let e = find_kernel kernel in
    let p = e.build () in
    print_string (Ir.Printer.program p);
    if emit_c then begin
      print_endline "\n/* generated C */";
      print_string (Codegen.program p)
    end
  in
  let c_arg =
    Arg.(value & flag & info [ "c" ] ~doc:"Also print the generated C.")
  in
  Cmd.v
    (Cmd.info "show" ~doc:"Print a kernel's textual IR (and optionally C).")
    Term.(const run $ kernel_arg $ c_arg)

(* ------------------------------------------------------------------ *)
(* moves                                                               *)
(* ------------------------------------------------------------------ *)

let moves_cmd =
  let run kernel target =
    let e = find_kernel kernel in
    let t = target_of_string target in
    let game = Game.start t (e.build ()) in
    List.iter (fun (i, d) -> Printf.printf "%3d  %s\n" i d) (Game.moves game)
  in
  Cmd.v
    (Cmd.info "moves"
       ~doc:"List the applicable transformations at the kernel's root state.")
    Term.(const run $ kernel_arg $ target_arg)

(* ------------------------------------------------------------------ *)
(* optimize                                                            *)
(* ------------------------------------------------------------------ *)

let optimize_cmd =
  let run kernel target strategy budget seed emit_c check =
    let e = find_kernel kernel in
    let t = target_of_string target in
    let p = e.build () in
    let t_naive = Machine.time t p in
    let outcome =
      Perfdojo.optimize ~seed (strategy_of_string budget strategy) t p
    in
    Printf.printf "kernel:     %s (%s)\n" e.label e.shape_desc;
    Printf.printf "target:     %s\n" (Machine.Desc.target_name t);
    Printf.printf "strategy:   %s\n" strategy;
    Printf.printf "naive:      %.3e s\n" t_naive;
    Printf.printf "optimized:  %.3e s (%.2fx, %d evaluations)\n"
      outcome.time_s (t_naive /. outcome.time_s) outcome.evaluations;
    if outcome.moves <> [] then begin
      print_endline "moves:";
      List.iter (Printf.printf "  %s\n") outcome.moves
    end;
    print_endline "schedule:";
    print_endline (Ir.Printer.body outcome.schedule);
    if check then begin
      let small = e.build_small () in
      let small_outcome =
        Perfdojo.optimize ~seed (strategy_of_string budget strategy) t small
      in
      match Interp.equivalent small small_outcome.schedule with
      | Ok () ->
          print_endline "numerical check (small variant): OK"
      | Error msg -> Printf.printf "numerical check FAILED: %s\n" msg
    end;
    if emit_c then begin
      print_endline "/* generated C */";
      print_string (Codegen.program outcome.schedule)
    end
  in
  let c_arg =
    Arg.(value & flag & info [ "c" ] ~doc:"Print C for the winning schedule.")
  in
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Re-run the strategy on a small variant of the kernel and \
             verify numerically against the reference interpreter.")
  in
  Cmd.v
    (Cmd.info "optimize" ~doc:"Optimize a kernel for a target machine.")
    Term.(
      const run $ kernel_arg $ target_arg $ strategy_arg $ budget_arg
      $ seed_arg $ c_arg $ check_arg)

(* ------------------------------------------------------------------ *)
(* verify                                                              *)
(* ------------------------------------------------------------------ *)

let verify_cmd =
  let run kernel target =
    let e = find_kernel kernel in
    let t = target_of_string target in
    let caps = Machine.caps t in
    let p = e.build_small () in
    (* apply every applicable instance once and verify each result: the
       paper's empirical validation of the applicability rules *)
    let insts = Transform.Xforms.all caps p in
    let failures = ref 0 in
    List.iter
      (fun (i : Transform.Xforms.instance) ->
        let p' = i.apply p in
        match Interp.equivalent ~tol:1e-4 p p' with
        | Ok () -> ()
        | Error msg ->
            incr failures;
            Printf.printf "FAIL %s: %s\n" (Transform.Xforms.describe i) msg)
      insts;
    Printf.printf "%d transformations verified on %s, %d failures\n"
      (List.length insts) e.label !failures;
    if !failures > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Numerically verify every applicable transformation of a kernel \
          (small shape) against the reference interpreter.")
    Term.(const run $ kernel_arg $ target_arg)

(* ------------------------------------------------------------------ *)
(* game: the interactive Dojo                                          *)
(* ------------------------------------------------------------------ *)

let game_cmd =
  let run kernel target trace_file =
    let e = find_kernel kernel in
    let t = target_of_string target in
    let game = Game.start t (e.build ()) in
    let t0 = Machine.time t (Game.state game) in
    let print_state () =
      Printf.printf "\n%s\n" (Ir.Printer.body (Game.state game));
      let now = Machine.time t (Game.state game) in
      Printf.printf "runtime %.3e s  (%.2fx vs start)\n" now (t0 /. now)
    in
    let print_moves () =
      List.iter
        (fun (i, d) -> Printf.printf "%3d  %s\n" i d)
        (Game.moves game)
    in
    let save_trace () =
      match trace_file with
      | None -> ()
      | Some path ->
          let oc = open_out path in
          List.iter (fun m -> output_string oc (m ^ "\n"))
            (Game.moves_played game);
          close_out oc;
          Printf.printf "trace saved to %s\n" path
    in
    Printf.printf
      "PerfDojo game: %s on %s\n\
       commands: <n> play move n | m list moves | s show state | u undo |\n\
      \          u <k> undo k-th move back | v verify | c emit C | q quit\n"
      e.label
      (Machine.Desc.target_name t);
    print_state ();
    (try
       while true do
         print_string "> ";
         let line = String.trim (read_line ()) in
         match String.split_on_char ' ' line with
         | [ "q" ] | [ "quit" ] -> raise Exit
         | [ "m" ] -> print_moves ()
         | [ "s" ] -> print_state ()
         | [ "v" ] -> (
             match Game.verify game with
             | Ok () -> print_endline "numerically equivalent to start: OK"
             | Error msg -> Printf.printf "FAILED: %s\n" msg)
         | [ "c" ] -> print_string (Codegen.program (Game.state game))
         | [ "u" ] -> (
             match Game.undo game with
             | Some _ -> print_state ()
             | None -> print_endline "nothing to undo")
         | [ "u"; k ] -> (
             match int_of_string_opt k with
             | Some k -> (
                 match Game.undo_at game k with
                 | Some _ -> print_state ()
                 | None ->
                     print_endline
                       "cannot remove: later moves depend on it")
             | None -> print_endline "usage: u <k>")
         | [ n ] when int_of_string_opt n <> None -> (
             match int_of_string_opt n with
             | Some i -> (
                 try
                   let time = Game.play game i in
                   Printf.printf "-> %.3e s\n" time
                 with Invalid_argument m -> print_endline m)
             | None -> ())
         | [ "" ] -> ()
         | _ -> print_endline "unknown command (q m s u v c or a move number)"
       done
     with Exit | End_of_file -> ());
    save_trace ()
  in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Save the played move sequence to FILE on exit.")
  in
  Cmd.v
    (Cmd.info "game"
       ~doc:
         "Play the performance game interactively: list moves, apply \
          them, watch the modelled runtime, undo, verify.")
    Term.(const run $ kernel_arg $ target_arg $ trace_arg)

(* ------------------------------------------------------------------ *)
(* replay: apply a saved trace                                         *)
(* ------------------------------------------------------------------ *)

let replay_cmd =
  let run kernel target file emit_c =
    let e = find_kernel kernel in
    let t = target_of_string target in
    let caps = Machine.caps t in
    let ic = open_in file in
    let rec read acc =
      match input_line ic with
      | line -> read (String.trim line :: acc)
      | exception End_of_file ->
          close_in ic;
          List.rev acc
    in
    let moves = List.filter (fun l -> l <> "") (read []) in
    let p = e.build () in
    match Transform.Engine.replay caps p moves with
    | Error msg ->
        Printf.eprintf "replay failed: %s\n" msg;
        exit 1
    | Ok result ->
        Printf.printf "replayed %d moves\n" (List.length moves);
        Printf.printf "runtime: %.3e s -> %.3e s\n" (Machine.time t p)
          (Machine.time t result);
        print_endline (Ir.Printer.body result);
        if emit_c then print_string (Codegen.program result)
  in
  let file_arg =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"TRACE")
  in
  let c_arg = Arg.(value & flag & info [ "c" ] ~doc:"Also print C.") in
  Cmd.v
    (Cmd.info "replay" ~doc:"Replay a move trace saved by the game command.")
    Term.(const run $ kernel_arg $ target_arg $ file_arg $ c_arg)

(* ------------------------------------------------------------------ *)
(* analyze: performance-model breakdown                                *)
(* ------------------------------------------------------------------ *)

let analyze_cmd =
  let run kernel target strategy budget seed =
    let e = find_kernel kernel in
    let t = target_of_string target in
    let p = e.build () in
    let sched =
      if strategy = "none" then p
      else
        (Perfdojo.optimize ~seed (strategy_of_string budget strategy) t p)
          .schedule
    in
    Printf.printf "kernel:   %s (%s), schedule: %s\n" e.label e.shape_desc
      strategy;
    Printf.printf "target:   %s\n" (Machine.Desc.target_name t);
    Printf.printf "runtime:  %.3e s   (%.2f GFLOP/s)\n"
      (Machine.time t sched) (Machine.gflops t sched);
    (match t with
    | Machine.Desc.Cpu c ->
        let b = Machine.Cpu_model.breakdown c sched in
        let cycles = Float.max b.comp b.mem +. b.ovh in
        Printf.printf
          "cycles:   %.3e   compute %.3e (%.0f%%)  memory %.3e (%.0f%%)  \
           overhead %.3e (%.0f%%)\n"
          cycles b.comp
          (100. *. b.comp /. cycles)
          b.mem
          (100. *. b.mem /. cycles)
          b.ovh
          (100. *. b.ovh /. cycles);
        Printf.printf "bound:    %s\n"
          (if b.mem > b.comp then "memory" else "compute")
    | Machine.Desc.Snitch sn ->
        let cycles = Machine.Snitch_sim.cycles sn sched in
        Printf.printf "cycles:   %.3e   fraction of peak: %.3f\n" cycles
          (Machine.Snitch_sim.peak_fraction sn sched)
    | Machine.Desc.Gpu g ->
        (* report per grid-mapped kernel *)
        let idx = ref 0 in
        Ir.Prog.iter_nodes
          (fun path node ->
            match node with
            | Ir.Types.Scope sc when sc.annot = Ir.Types.GpuGrid ->
                let depth = Ir.Prog.depth_of_path sched path in
                let st = Machine.Gpu_model.analyze_kernel g sched depth sc in
                Printf.printf
                  "kernel %d: %.3e flops, %.3e B traffic, %.0f threads, \
                   wavefront eff %.2f, vectorized %b\n"
                  !idx st.flops st.traffic_bytes st.total_threads st.wave_eff
                  st.vectorized;
                incr idx
            | _ -> ())
          sched;
        if !idx = 0 then
          print_endline "no GPU-mapped kernels: everything runs on the host");
    print_endline "\nschedule:";
    print_endline (Ir.Printer.body sched)
  in
  let strategy_arg =
    let doc = "Schedule to analyze: none (naive) or any optimize strategy." in
    Arg.(value & opt string "none" & info [ "strategy"; "s" ] ~docv:"S" ~doc)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Explain where the modelled time goes (compute / memory / \
          overhead; per-GPU-kernel stats) for a kernel's naive or \
          optimized schedule.")
    Term.(
      const run $ kernel_arg $ target_arg $ strategy_arg $ budget_arg
      $ seed_arg)

(* ------------------------------------------------------------------ *)
(* generate: the automated library generation pipeline                 *)
(* ------------------------------------------------------------------ *)

(* The paper's end product: for a target architecture, optimize every
   operator and emit a C library (one translation unit per kernel, a
   header, and the schedules as replayable IR). *)
let generate_cmd =
  let run target strategy budget seed out =
    let t = target_of_string target in
    (try Unix.mkdir out 0o755
     with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    let sanitize label =
      String.map (fun c -> if c = ' ' then '_' else c) label
    in
    let entries =
      match t with
      | Machine.Desc.Snitch _ -> Kernels.snitch_micro @ Kernels.table3
      | _ -> Kernels.table3
    in
    let index = Buffer.create 256 in
    Buffer.add_string index
      (Printf.sprintf
         "/* PerfDojo generated library for %s (strategy %s, budget %d) */\n"
         (Machine.Desc.target_name t) strategy budget);
    let total_speedup = ref [] in
    List.iter
      (fun (e : Kernels.entry) ->
        let p = e.build () in
        let t_naive = Machine.time t p in
        let outcome =
          Perfdojo.optimize ~seed (strategy_of_string budget strategy) t p
        in
        let speedup = t_naive /. outcome.time_s in
        total_speedup := speedup :: !total_speedup;
        let base = sanitize e.label in
        (* the C implementation *)
        let oc = open_out (Filename.concat out (base ^ ".c")) in
        Printf.fprintf oc
          "/* %s (%s): %s\n   modelled %.3e s (%.2fx over naive) */\n%s"
          e.label e.shape_desc e.description outcome.time_s speedup
          (Codegen.program outcome.schedule);
        close_out oc;
        (* the schedule itself, replayable via `perfdojo replay` /
           Ir.Parser *)
        let oc = open_out (Filename.concat out (base ^ ".pdj")) in
        output_string oc (Ir.Printer.program outcome.schedule);
        close_out oc;
        Buffer.add_string index
          (Printf.sprintf "/* %-14s %-18s %.3e s  %6.2fx */\n" e.label
             e.shape_desc outcome.time_s speedup);
        Printf.printf "generated %-14s %.3e s (%.2fx)\n%!" e.label
          outcome.time_s speedup)
      entries;
    let geo =
      Util.Stats.geomean (Array.of_list !total_speedup)
    in
    Buffer.add_string index
      (Printf.sprintf "/* geomean speedup over naive: %.2fx */\n" geo);
    let oc = open_out (Filename.concat out "INDEX.h") in
    Buffer.output_buffer oc index;
    close_out oc;
    Printf.printf
      "\nlibrary written to %s/ (%d kernels, geomean %.2fx over naive)\n" out
      (List.length entries) geo
  in
  let out_arg =
    Arg.(
      value & opt string "perfdojo_lib"
      & info [ "out"; "o" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  Cmd.v
    (Cmd.info "generate"
       ~doc:
         "Generate an optimized kernel library for a target: optimize \
          every built-in operator and emit C sources, replayable \
          schedules and an index.")
    Term.(
      const run $ target_arg $ strategy_arg $ budget_arg $ seed_arg $ out_arg)

let () =
  let doc = "PerfDojo: transformation-centric kernel optimization." in
  let info = Cmd.info "perfdojo" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd; targets_cmd; show_cmd; moves_cmd; optimize_cmd;
            verify_cmd; game_cmd; replay_cmd; generate_cmd; analyze_cmd;
          ]))
