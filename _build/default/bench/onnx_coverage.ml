(* The paper claims the supported IR features "facilitate the
   implementation of 83% of the kernels defined in the ONNX
   specification" (§2.1).  This experiment reproduces that inventory: a
   categorized list of ONNX operators, each mapped to the IR features it
   needs; operators requiring the deliberately excluded features
   (indirection, data-dependent ranges, dependent iteration, general
   control flow) are counted as not expressible.

   For one representative of each supported feature class the claim is
   machine-checked: a small IR program implementing the operator is
   built, validated and executed. *)

type feature =
  | Elementwise
  | Broadcast
  | Reduction
  | Contraction (* matmul-like: reduction + multi-dim indexing *)
  | Window (* conv/pool-like: affine index sums *)
  | IndexValue (* needs the iteration index as data *)
  | Layout (* pure data movement expressible with affine indices *)
  | Indirection (* gather/scatter: excluded *)
  | DataDependent (* data-dependent ranges / shapes: excluded *)
  | ControlFlow (* loops/ifs over subgraphs: excluded *)

let supported = function
  | Elementwise | Broadcast | Reduction | Contraction | Window | IndexValue
  | Layout ->
      true
  | Indirection | DataDependent | ControlFlow -> false

let feature_name = function
  | Elementwise -> "elementwise"
  | Broadcast -> "broadcast"
  | Reduction -> "reduction"
  | Contraction -> "contraction"
  | Window -> "window"
  | IndexValue -> "index-as-value"
  | Layout -> "layout"
  | Indirection -> "indirection (excluded)"
  | DataDependent -> "data-dependent (excluded)"
  | ControlFlow -> "control flow (excluded)"

(* A representative slice of the ONNX operator set (opset 17), mapped to
   the dominating IR feature each needs. *)
let operators : (string * feature) list =
  [
    (* elementwise math *)
    ("Abs", Elementwise); ("Add", Elementwise); ("Ceil", Elementwise);
    ("Clip", Elementwise); ("Cos", Elementwise); ("Div", Elementwise);
    ("Elu", Elementwise); ("Erf", Elementwise); ("Exp", Elementwise);
    ("Floor", Elementwise); ("Gelu", Elementwise); ("HardSigmoid", Elementwise);
    ("HardSwish", Elementwise); ("LeakyRelu", Elementwise); ("Log", Elementwise);
    ("Max", Elementwise); ("Mean", Elementwise); ("Min", Elementwise);
    ("Mish", Elementwise); ("Mul", Elementwise); ("Neg", Elementwise);
    ("Pow", Elementwise); ("Reciprocal", Elementwise); ("Relu", Elementwise);
    ("Round", Elementwise); ("Selu", Elementwise); ("Sigmoid", Elementwise);
    ("Sign", Elementwise); ("Sin", Elementwise); ("Softplus", Elementwise);
    ("Softsign", Elementwise); ("Sqrt", Elementwise); ("Sub", Elementwise);
    ("Tanh", Elementwise); ("ThresholdedRelu", Elementwise);
    (* comparison / logic (as 0/1 floats) *)
    ("And", Elementwise); ("Equal", Elementwise); ("Greater", Elementwise);
    ("Less", Elementwise); ("Not", Elementwise); ("Or", Elementwise);
    ("Where", Elementwise); ("Xor", Elementwise);
    (* broadcasting forms *)
    ("PRelu", Broadcast); ("Expand", Broadcast);
    (* reductions *)
    ("ArgMax", IndexValue); ("ArgMin", IndexValue);
    ("CumSum", Reduction); ("LogSoftmax", Reduction);
    ("LpNormalization", Reduction); ("ReduceL1", Reduction);
    ("ReduceL2", Reduction); ("ReduceLogSum", Reduction);
    ("ReduceLogSumExp", Reduction); ("ReduceMax", Reduction);
    ("ReduceMean", Reduction); ("ReduceMin", Reduction);
    ("ReduceProd", Reduction); ("ReduceSum", Reduction);
    ("ReduceSumSquare", Reduction); ("Softmax", Reduction);
    (* normalizations *)
    ("BatchNormalization", Reduction); ("GroupNormalization", Reduction);
    ("InstanceNormalization", Reduction); ("LayerNormalization", Reduction);
    ("LpPool", Window); ("LRN", Window); ("MeanVarianceNormalization", Reduction);
    ("RMSNormalization", Reduction);
    (* contractions *)
    ("Einsum", Contraction); ("Gemm", Contraction); ("MatMul", Contraction);
    ("MatMulInteger", Contraction); ("QGemm", Contraction);
    (* windows: convolutions and pooling *)
    ("AveragePool", Window); ("Conv", Window); ("ConvInteger", Window);
    ("ConvTranspose", Window); ("DepthToSpace", Layout);
    ("GlobalAveragePool", Reduction); ("GlobalLpPool", Reduction);
    ("GlobalMaxPool", Reduction); ("MaxPool", Window);
    ("SpaceToDepth", Layout);
    (* layout / data movement *)
    ("Concat", Layout); ("Flatten", Layout); ("Identity", Layout);
    ("Pad", Layout); ("Reshape", Layout); ("Slice", Layout);
    ("Split", Layout); ("Squeeze", Layout); ("Tile", Layout);
    ("Transpose", Layout); ("Unsqueeze", Layout);
    (* index-as-value *)
    ("EyeLike", IndexValue); ("Range", IndexValue); ("Trilu", IndexValue);
    ("OneHot", IndexValue);
    (* attention-era composites *)
    ("Attention", Contraction); ("QLinearMatMul", Contraction);
    ("QuantizeLinear", Elementwise); ("DequantizeLinear", Elementwise);
    ("SkipLayerNormalization", Reduction); ("BiasGelu", Elementwise);
    (* excluded: indirection *)
    ("Gather", Indirection); ("GatherElements", Indirection);
    ("GatherND", Indirection); ("Scatter", Indirection);
    ("ScatterElements", Indirection); ("ScatterND", Indirection);
    ("Compress", DataDependent); ("NonZero", DataDependent);
    ("TopK", DataDependent); ("Unique", DataDependent);
    ("NonMaxSuppression", DataDependent); ("RoiAlign", Indirection);
    ("MaxUnpool", Indirection); ("Resize", Indirection);
    ("Upsample", Indirection); ("GridSample", Indirection);
    ("Bernoulli", DataDependent); ("Multinomial", DataDependent);
    ("RandomNormal", DataDependent); ("RandomUniform", DataDependent);
    ("StringNormalizer", DataDependent); ("TfIdfVectorizer", DataDependent);
    (* excluded: control flow and recurrences *)
    ("If", ControlFlow); ("Loop", ControlFlow); ("Scan", ControlFlow);
    ("GRU", ControlFlow); ("LSTM", ControlFlow); ("RNN", ControlFlow);
    ("SequenceMap", ControlFlow); ("Optional", ControlFlow);
  ]

(* Machine-checked representatives: one constructive proof per supported
   feature class. *)
let proofs : (feature * string * string) list =
  [
    ( Elementwise,
      "Add",
      "x f32 [4, 6] heap\ny f32 [4, 6] heap\nz f32 [4, 6] heap\n\
       inputs: x, y\noutputs: z\n4\n| 6\n\
       | | z[{0},{1}] = x[{0},{1}] + y[{0},{1}]\n" );
    ( Broadcast,
      "PRelu (per-row slope)",
      "x f32 [4, 6] heap\nslope f32 [4] heap\nz f32 [4, 6] heap\n\
       inputs: x, slope\noutputs: z\n4\n| 6\n\
       | | z[{0},{1}] = max(x[{0},{1}], 0) + slope[{0}] * min(x[{0},{1}], 0)\n"
    );
    ( Reduction,
      "ReduceSum",
      "x f32 [4, 6] heap\nz f32 [4] heap\ninputs: x\noutputs: z\n\
       4\n| z[{0}] = 0\n| 6\n| | z[{0}] = z[{0}] + x[{0},{1}]\n" );
    ( Contraction,
      "MatMul",
      "a f32 [3, 4] heap\nb f32 [4, 5] heap\nc f32 [3, 5] heap\n\
       inputs: a, b\noutputs: c\n3\n| 5\n| | c[{0},{1}] = 0\n| | 4\n\
       | | | c[{0},{1}] = c[{0},{1}] + a[{0},{2}] * b[{2},{1}]\n" );
    ( Window,
      "AveragePool 3 (1D)",
      "x f32 [10] heap\nz f32 [8] heap\ninputs: x\noutputs: z\n\
       8\n| z[{0}] = 0\n| 3\n| | z[{0}] = z[{0}] + x[{0}+{1}]\n\
       8\n| z[{0}] = z[{0}] / 3\n" );
    ( IndexValue,
      "Range (start=0, step=1)",
      "z f32 [8] heap\ninputs: \noutputs: z\n8\n| z[{0}] = {0}\n" );
    ( Layout,
      "Transpose",
      "x f32 [4, 6] heap\nz f32 [6, 4] heap\ninputs: x\noutputs: z\n\
       6\n| 4\n| | z[{0},{1}] = x[{1},{0}]\n" );
  ]

let run () =
  Report.header
    "ONNX operator coverage (the paper's 83% expressibility claim)";
  (* machine-check the representatives *)
  Report.subheader "constructive proofs (validated + executed)";
  List.iter
    (fun (f, name, text) ->
      let p = Ir.Parser.program text in
      Ir.Validate.check_exn p;
      let rng = Util.Rng.create 3 in
      let t = Interp.random_inputs rng p in
      Interp.run p t;
      Printf.printf "  %-16s %-26s OK\n" (feature_name f) name)
    proofs;
  (* the inventory *)
  let by_feature = Hashtbl.create 16 in
  List.iter
    (fun (_, f) ->
      Hashtbl.replace by_feature f
        (1 + try Hashtbl.find by_feature f with Not_found -> 0))
    operators;
  Report.subheader "inventory";
  Report.table
    [ "feature"; "ops"; "expressible" ]
    (List.map
       (fun f ->
         [
           feature_name f;
           string_of_int (try Hashtbl.find by_feature f with Not_found -> 0);
           (if supported f then "yes" else "no");
         ])
       [
         Elementwise; Broadcast; Reduction; Contraction; Window; IndexValue;
         Layout; Indirection; DataDependent; ControlFlow;
       ]);
  let total = List.length operators in
  let ok =
    List.length (List.filter (fun (_, f) -> supported f) operators)
  in
  Printf.printf
    "\ncoverage: %d / %d operators expressible = %.0f%%   (paper: 83%%)\n" ok
    total
    (100.0 *. float_of_int ok /. float_of_int total)
