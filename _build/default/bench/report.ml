(* Small reporting helpers for the experiment harness. *)

let header title =
  let bar = String.make 72 '=' in
  Printf.printf "\n%s\n%s\n%s\n" bar title bar

let subheader title = Printf.printf "\n--- %s ---\n" title

(* Print a table: column headers then rows of strings, padded. *)
let table (cols : string list) (rows : string list list) =
  let widths =
    List.mapi
      (fun i c ->
        List.fold_left
          (fun acc row ->
            match List.nth_opt row i with
            | Some cell -> max acc (String.length cell)
            | None -> acc)
          (String.length c) rows)
      cols
  in
  let print_row cells =
    let padded =
      List.mapi
        (fun i cell ->
          let w = List.nth widths i in
          cell ^ String.make (max 0 (w - String.length cell)) ' ')
        cells
    in
    print_endline ("  " ^ String.concat "  " padded)
  in
  print_row cols;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

let f3 x = Printf.sprintf "%.3f" x
let e3 x = Printf.sprintf "%.3e" x
let x2 x = Printf.sprintf "%.2fx" x

let geomean = Util.Stats.geomean

(* Environment-tunable budgets so `dune exec bench/main.exe` finishes
   quickly while PERFDOJO_BUDGET=1000 reproduces the paper's setting. *)
let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( match int_of_string_opt s with Some v -> v | None -> default)
  | None -> default

let search_budget () = env_int "PERFDOJO_BUDGET" 400
let rl_episodes () = env_int "PERFDOJO_RL_EPISODES" 24
