bench/experiments.ml: Array Baselines Codegen Float Game Interp Ir Kernels List Machine Onnx_coverage Perfdojo Printf Report Rl Search String Transform Util
