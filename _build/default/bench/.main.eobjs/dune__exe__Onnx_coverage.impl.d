bench/onnx_coverage.ml: Hashtbl Interp Ir List Printf Report Util
