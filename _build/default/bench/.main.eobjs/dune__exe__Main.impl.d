bench/main.ml: Analyze Array Bechamel Benchmark Experiments Hashtbl Instance Interp Ir Kernels List Machine Measure Printf Report Rl Staged String Sys Test Time Toolkit Transform
