bench/main.mli:
