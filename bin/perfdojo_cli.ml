(* perfdojo: command-line driver.

   Noun-verb command groups:

     perfdojo kernel list | show | moves
     perfdojo lib generate
     perfdojo db list | best | export
     perfdojo serve | client

   plus the established spellings, kept as aliases of the same terms:
   list, targets, show, moves, optimize, verify, game, replay, analyze
   and generate (= lib generate).

   The cross-cutting run options — --db --jobs --trace --stats
   --max-retries --fault-rate --seed — are one shared Cmdliner term,
   [common_opts]; [with_common] validates them once, loads the tuning
   database, opens the trace sink and hands the body a single
   [Perfdojo.Ctx.t] run context.

   Errors follow Cmdliner conventions: unknown kernels, targets and
   strategies are usage errors (printed with usage, non-zero exit), so
   scripted tuning pipelines can distinguish them from tuning output. *)

open Cmdliner
open Perfdojo

let all_kernels = Kernels.table3 @ Kernels.snitch_micro

(* Command bodies return [(unit, bool * string) result]; the bool
   requests usage printing, per [Term.ret]'s error conventions. *)
let ( let* ) = Result.bind

let to_ret = function
  | Ok () -> `Ok ()
  | Error (usage, msg) -> `Error (usage, msg)

let find_kernel name : (Kernels.entry, bool * string) result =
  match Kernels.find_entry all_kernels name with
  | e -> Ok e
  | exception Invalid_argument _ ->
      Error
        (true, Printf.sprintf "unknown kernel %S; try `perfdojo list`" name)

let known_target_names = List.map fst Machine.Desc.known_targets

(* Returns the canonical short name alongside the descriptor: the short
   name is what tuning-database records are keyed on. *)
let target_of_string s :
    (string * Machine.Desc.target, bool * string) result =
  match Machine.Desc.resolve_target s with
  | Some pair -> Ok pair
  | None ->
      Error
        ( true,
          Printf.sprintf "unknown target %S (%s)" s
            (String.concat ", " known_target_names) )

let strategy_of_string budget s : (strategy, bool * string) result =
  match s with
  | "naive" -> Ok Naive
  | "greedy" -> Ok Greedy
  | "heuristic" -> Ok Heuristic
  | "sampling" -> Ok (Sampling { budget; space = Search.Stochastic.Heuristic })
  | "sampling-edges" ->
      Ok (Sampling { budget; space = Search.Stochastic.Edges })
  | "annealing" ->
      Ok (Annealing { budget; space = Search.Stochastic.Heuristic })
  | "annealing-edges" ->
      Ok (Annealing { budget; space = Search.Stochastic.Edges })
  | "rl" ->
      Ok
        (Rl_search
           {
             Rl.Perfllm.default_config with
             episodes = max 4 (budget / 24);
             max_steps = 20;
           })
  | "portfolio" -> Ok (Portfolio { budget })
  | "exhaustive" -> Ok Exhaustive
  | s -> Error (true, Printf.sprintf "unknown strategy %S" s)

(* Tolerant load: malformed lines (a writer killed mid-append) are
   skipped by Tuning.Db.load — surface them as a warning, not a
   failure, so a torn database never blocks tuning.  With a trace sink
   open they also land as a [db.skipped_lines] event. *)
let load_db ?obs path : (Tuning.Db.t, bool * string) result =
  match Tuning.Db.load ?obs path with
  | Ok db ->
      let skipped = Tuning.Db.skipped_lines db in
      if skipped > 0 then
        Printf.eprintf "warning: %s: skipped %d malformed line(s)\n%!" path
          skipped;
      Ok db
  | Error msg -> Error (false, msg)

(* shared options *)
let target_arg =
  let doc =
    "Target machine: " ^ String.concat ", " known_target_names ^ "."
  in
  Arg.(value & opt string "x86" & info [ "target"; "t" ] ~docv:"TARGET" ~doc)

let kernel_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"KERNEL")

let budget_arg =
  let doc = "Search evaluation budget." in
  Arg.(value & opt int 300 & info [ "budget"; "b" ] ~docv:"N" ~doc)

let strategy_arg =
  let doc =
    "Strategy: naive, greedy, heuristic, sampling[-edges], \
     annealing[-edges], rl, portfolio, exhaustive (enumerate the full \
     transformation graph to $(b,--depth) moves and certify the optimum)."
  in
  Arg.(
    value & opt string "heuristic" & info [ "strategy"; "s" ] ~docv:"S" ~doc)

let db_file_arg =
  let doc = "Tuning database file (JSONL, one schedule record per line)." in
  Arg.(value & opt string "tune.jsonl" & info [ "db" ] ~docv:"FILE" ~doc)

(* ------------------------------------------------------------------ *)
(* The shared run options: one term, one validation path, one Ctx      *)
(* ------------------------------------------------------------------ *)

type common = {
  co_db : string option;
  co_jobs : int;
  co_trace : string option;
  co_stats : bool;
  co_max_retries : int;
  co_fault_rate : float;
  co_seed : int;
  co_surrogate : string option;
      (* None = off; Some "" = fresh model; Some path = load *)
  co_filter_ratio : float;
  co_dedup : bool;
  co_visited_dedup : bool;
  co_depth : int;
  co_checkpoint : string option;
  co_checkpoint_every : int;
  co_resume : bool;
  co_composites : string list;
}

let common_opts : common Term.t =
  let db_arg =
    let doc =
      "Tuning database (JSONL).  The run is memoized against it and its \
       winning schedules are recorded into it."
    in
    Arg.(value & opt (some string) None & info [ "db" ] ~docv:"FILE" ~doc)
  in
  let jobs_arg =
    let doc =
      "Worker domains for the stochastic searches (and the portfolio \
       race / library pairs).  0 (default) is the sequential path; N >= \
       1 evaluates in parallel — the result is the same for every N >= \
       1, so --jobs only changes wall-clock time."
    in
    Arg.(value & opt int 0 & info [ "jobs"; "j" ] ~docv:"N" ~doc)
  in
  let trace_arg =
    let doc =
      "Write a structured JSONL trace of the run to $(docv): search \
       steps, engine moves, phase spans.  The stream is deterministic \
       for a given seed — identical for --jobs 1 and --jobs N up to the \
       wall-clock dur_s fields."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let stats_arg =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Print an end-of-run metrics table: search counters, cache \
             hit rate, pool utilization and per-phase span times.")
  in
  let retries_arg =
    let doc =
      "Retry budget for transient evaluation failures: each failing \
       evaluation is retried up to N times (with deterministic backoff) \
       before being quarantined at +inf."
    in
    Arg.(
      value
      & opt int Robust.Guard.default.max_retries
      & info [ "max-retries" ] ~docv:"N" ~doc)
  in
  let fault_rate_arg =
    let doc =
      "Inject deterministic faults (exceptions, NaNs, delays) into this \
       fraction of evaluations — a testing knob for the degradation \
       path, never useful in production.  0 disables injection exactly."
    in
    Arg.(value & opt float 0. & info [ "fault-rate" ] ~docv:"R" ~doc)
  in
  let seed_arg =
    let doc = "Random seed." in
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let surrogate_arg =
    let doc =
      "Learn a surrogate cost model online during the search (every \
       real evaluation becomes a training pair).  With $(docv), start \
       from a model file saved by $(b,perfdojo model train) instead of \
       from scratch.  Pair with $(b,--filter-ratio) to spend the model: \
       pre-rank each candidate batch and only send the top fraction to \
       the simulator."
    in
    Arg.(
      value
      & opt ~vopt:(Some "") (some string) None
      & info [ "surrogate" ] ~docv:"FILE" ~doc)
  in
  let filter_ratio_arg =
    let doc =
      "Fraction of each candidate batch that reaches the simulator \
       after surrogate pre-ranking, in (0, 1].  1.0 (default) scores \
       and trains but never filters; requires $(b,--surrogate) when \
       below 1."
    in
    Arg.(value & opt float 1.0 & info [ "filter-ratio" ] ~docv:"R" ~doc)
  in
  let dedup_arg =
    Arg.(
      value & flag
      & info [ "dedup" ]
          ~doc:
            "Deduplicate identical candidates within each search batch: \
             structurally equal programs are simulated once and share \
             the measurement (traced as search.batch_dedup).")
  in
  let visited_dedup_arg =
    Arg.(
      value & flag
      & info [ "visited-dedup" ]
          ~doc:
            "Remember the canonical fingerprint of every state measured \
             so far and never re-simulate an equivalent one — \
             alpha-renamed or commutatively-reordered spellings of a \
             visited schedule fold as search.visited_skip events instead \
             of paying a simulator call.  Implies per-batch $(b,--dedup).")
  in
  let depth_arg =
    let doc =
      "Move-sequence depth bound for $(b,--strategy exhaustive): the \
       full transformation graph is enumerated (with canonical dedup) \
       up to N moves from the root, certifying the optimum within that \
       bound.  Ignored by the other strategies."
    in
    Arg.(value & opt int 3 & info [ "depth" ] ~docv:"N" ~doc)
  in
  let checkpoint_arg =
    let doc =
      "Periodically snapshot the run's full search state to $(docv) \
       (versioned, checksummed, written atomically with fsync).  A \
       killed run restarted with $(b,--resume) reproduces the \
       uninterrupted run exactly: same result, same accounting, same \
       stripped trace.  SIGINT/SIGTERM write a final checkpoint and \
       exit with code 4."
    in
    Arg.(
      value & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE" ~doc)
  in
  let checkpoint_every_arg =
    let doc =
      "Checkpoint cadence for the stochastic engines: snapshot after \
       every N filled evaluation slots (exhaustive checkpoints per BFS \
       level regardless).  Requires $(b,--checkpoint)."
    in
    Arg.(value & opt int 64 & info [ "checkpoint-every" ] ~docv:"N" ~doc)
  in
  let resume_arg =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Resume from the $(b,--checkpoint) file if it exists (a \
             missing file starts cold, so the flag is safe in retry \
             loops).  The checkpoint must match the run's \
             configuration; a torn or truncated file is rejected with \
             a typed error, never deserialized as garbage.")
  in
  let composites_arg =
    let doc =
      "Enable named composite transformations as macro-moves in the \
       search: each composite (e.g. tile_and_unroll, fuse_chain) is \
       offered alongside the atomic moves, so one search step can take \
       a whole selector-guarded sequence.  $(docv) is a comma-separated \
       list of composite names, or $(b,all) for every registered \
       composite (`perfdojo script list` names them)."
    in
    Arg.(
      value
      & opt (list string) []
      & info [ "composites" ] ~docv:"NAMES" ~doc)
  in
  let make co_db co_jobs co_trace co_stats co_max_retries co_fault_rate
      co_seed co_surrogate co_filter_ratio co_dedup co_visited_dedup
      co_depth co_checkpoint co_checkpoint_every co_resume co_composites =
    { co_db; co_jobs; co_trace; co_stats; co_max_retries; co_fault_rate;
      co_seed; co_surrogate; co_filter_ratio; co_dedup; co_visited_dedup;
      co_depth; co_checkpoint; co_checkpoint_every; co_resume;
      co_composites }
  in
  Term.(
    const make $ db_arg $ jobs_arg $ trace_arg $ stats_arg $ retries_arg
    $ fault_rate_arg $ seed_arg $ surrogate_arg $ filter_ratio_arg
    $ dedup_arg $ visited_dedup_arg $ depth_arg $ checkpoint_arg
    $ checkpoint_every_arg $ resume_arg $ composites_arg)

(* Validate the shared options once, load the database, open the trace
   channel, build the run context and hand everything to [body]; close
   the trace and print the metrics table afterwards.  A cache rides
   along whenever a database does, so tuned runs memoize for free. *)
let with_common (c : common) body =
  let* () =
    if c.co_max_retries < 0 then
      Error (true, "--max-retries must be non-negative")
    else Ok ()
  in
  let* faults =
    if c.co_fault_rate = 0. then Ok Robust.Faults.none
    else if c.co_fault_rate >= 0. && c.co_fault_rate <= 1. then
      Ok (Robust.Faults.spread ~seed:c.co_seed c.co_fault_rate)
    else Error (true, "--fault-rate must lie in [0, 1]")
  in
  let* () =
    if c.co_filter_ratio <= 0. || c.co_filter_ratio > 1. then
      Error (true, "--filter-ratio must lie in (0, 1]")
    else if c.co_filter_ratio < 1. && c.co_surrogate = None then
      Error (true, "--filter-ratio below 1 requires --surrogate")
    else Ok ()
  in
  let* () =
    if c.co_depth < 0 then Error (true, "--depth must be non-negative")
    else Ok ()
  in
  let* () =
    if c.co_checkpoint_every < 1 then
      Error (true, "--checkpoint-every must be >= 1")
    else if c.co_resume && c.co_checkpoint = None then
      Error (true, "--resume requires --checkpoint FILE")
    else Ok ()
  in
  let* () =
    let known = Transfo.Composites.names in
    match
      List.filter
        (fun n -> n <> "all" && not (List.mem n known))
        c.co_composites
    with
    | [] -> Ok ()
    | bad ->
        Error
          ( true,
            Printf.sprintf "--composites: unknown composite(s) %s (known: %s)"
              (String.concat ", " bad)
              (String.concat ", " known) )
  in
  let* surrogate =
    match c.co_surrogate with
    | None -> Ok None
    | Some "" -> Ok (Some (Surrogate.Model.create ()))
    | Some file -> (
        match Surrogate.Model.load file with
        | Ok m -> Ok (Some m)
        | Error e ->
            Error (false, Printf.sprintf "--surrogate %s: %s" file e))
  in
  (* the trace sink opens before the database loads so skipped lines
     surface as db.skipped_lines events in the run's trace *)
  let trace_oc = Option.map open_out c.co_trace in
  let obs =
    match trace_oc with
    | None -> Obs.Trace.null
    | Some oc -> Obs.Trace.to_channel oc
  in
  let* db =
    match c.co_db with
    | None -> Ok None
    | Some f -> Result.map Option.some (load_db ~obs f)
  in
  let metrics = if c.co_stats then Some (Obs.Metrics.create ()) else None in
  let cache = Option.map (fun _ -> Tuning.Cache.create ()) db in
  let ctx =
    Ctx.default |> Ctx.with_seed c.co_seed |> Ctx.with_jobs c.co_jobs
    |> Ctx.with_obs obs |> Ctx.with_faults faults
    |> Ctx.with_guard
         { Robust.Guard.default with max_retries = c.co_max_retries }
    |> Ctx.with_filter_ratio c.co_filter_ratio
    |> Ctx.with_dedup c.co_dedup
    |> Ctx.with_visited_dedup c.co_visited_dedup
    |> Ctx.with_exhaustive_depth c.co_depth
    |> Ctx.with_composites c.co_composites
  in
  let ctx =
    match surrogate with
    | Some m -> Ctx.with_surrogate m ctx
    | None -> ctx
  in
  let ctx =
    match cache with Some cch -> Ctx.with_cache cch ctx | None -> ctx
  in
  let ctx =
    match metrics with Some m -> Ctx.with_metrics m ctx | None -> ctx
  in
  (* checkpoint-then-exit on SIGINT/SIGTERM: the flag handler lets the
     engine reach its next safe boundary (round / BFS level / pair),
     write a final checkpoint and raise Interrupted — installed only
     when there is a checkpoint to write, so Ctrl-C on a plain run
     keeps its immediate default behaviour *)
  let ctx =
    match c.co_checkpoint with
    | None -> ctx
    | Some path ->
        Recover.Interrupt.install ();
        ctx
        |> Ctx.with_checkpoint ~every:c.co_checkpoint_every path
        |> Ctx.with_resume c.co_resume
  in
  let close () =
    match trace_oc with Some oc -> close_out oc | None -> ()
  in
  match body ~ctx ~db with
  | Ok () ->
      close ();
      Option.iter (Printf.printf "trace:      %s\n") c.co_trace;
      (match metrics with
      | Some m -> Format.printf "%a" Obs.Metrics.pp_summary m
      | None -> ());
      Ok ()
  | Error _ as e ->
      close ();
      e
  | exception exn ->
      close ();
      raise exn

(* ------------------------------------------------------------------ *)
(* kernel list                                                         *)
(* ------------------------------------------------------------------ *)

let list_cmd =
  let run () =
    Printf.printf "%-14s %-18s %s\n" "kernel" "shape" "description";
    List.iter
      (fun (e : Kernels.entry) ->
        Printf.printf "%-14s %-18s %s\n" e.label e.shape_desc e.description)
      all_kernels
  in
  Cmd.v (Cmd.info "list" ~doc:"List the built-in kernels (Table 3 + Snitch).")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* targets                                                             *)
(* ------------------------------------------------------------------ *)

let targets_cmd =
  let run () =
    List.iter
      (fun (short, t) ->
        Printf.printf "%-8s %s\n" short (Machine.Desc.target_name t))
      Machine.Desc.known_targets
  in
  Cmd.v (Cmd.info "targets" ~doc:"List the modelled machines.")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* kernel show                                                         *)
(* ------------------------------------------------------------------ *)

let show_cmd =
  let run kernel emit_c =
    to_ret
    @@ let* e = find_kernel kernel in
       let p = e.build () in
       print_string (Ir.Printer.program p);
       if emit_c then begin
         print_endline "\n/* generated C */";
         print_string (Codegen.program p)
       end;
       Ok ()
  in
  let c_arg =
    Arg.(value & flag & info [ "c" ] ~doc:"Also print the generated C.")
  in
  Cmd.v
    (Cmd.info "show" ~doc:"Print a kernel's textual IR (and optionally C).")
    Term.(ret (const run $ kernel_arg $ c_arg))

(* ------------------------------------------------------------------ *)
(* kernel moves                                                        *)
(* ------------------------------------------------------------------ *)

let moves_cmd =
  let run kernel target script =
    to_ret
    @@ let* e = find_kernel kernel in
       let* _, t = target_of_string target in
       let game = Game.start t (e.build ()) in
       let render d =
         if not script then d
         else
           (* each describe string round-trips to one script statement;
              anything unparseable falls back to the raw spelling *)
           match (Transfo.Script.of_moves [ d ]).Transfo.Script.stmts with
           | [ (_, st) ] -> Transfo.Script.stmt_to_string st
           | _ -> d
       in
       List.iter
         (fun (i, d) -> Printf.printf "%3d  %s\n" i (render d))
         (Game.moves game);
       Ok ()
  in
  let script_arg =
    Arg.(
      value & flag
      & info [ "script" ]
          ~doc:
            "Print each move as a schedule-script statement (the .pds \
             spelling accepted by $(b,perfdojo script run)) instead of \
             the raw describe string.")
  in
  Cmd.v
    (Cmd.info "moves"
       ~doc:"List the applicable transformations at the kernel's root state.")
    Term.(ret (const run $ kernel_arg $ target_arg $ script_arg))

(* The kernel noun groups the per-kernel inspection verbs; the bare
   list/show/moves spellings stay as aliases of the same commands. *)
let kernel_cmd =
  Cmd.group
    (Cmd.info "kernel" ~doc:"Inspect the built-in kernels.")
    [ list_cmd; show_cmd; moves_cmd ]

(* ------------------------------------------------------------------ *)
(* optimize                                                            *)
(* ------------------------------------------------------------------ *)

let optimize_cmd =
  let run kernel target strategy budget common emit_c check warm =
    to_ret
    @@ let* e = find_kernel kernel in
       let* tname, t = target_of_string target in
       let* strat = strategy_of_string budget strategy in
       let* () =
         if warm && common.co_db = None then
           Error (true, "--warm-start needs a tuning database (--db)")
         else Ok ()
       in
       with_common common @@ fun ~ctx ~db ->
       let p = e.build () in
       let t_naive = Machine.time t p in
       let warm_start =
         if not warm then []
         else
           match db with
           | None -> []
           | Some d -> (
               match
                 Tuning.Warmstart.moves_for d ~kernel:e.label ~target:tname
                   ~root:p
               with
               | [] ->
                   Printf.eprintf
                     "note: no matching record for %s on %s; starting cold\n"
                     e.label tname;
                   []
               | moves ->
                   (* pre-script records (schema <= 2) replay through the
                      deprecated describe-string path; nudge toward the
                      script format without blocking the run *)
                   (match Tuning.Db.best d ~kernel:e.label ~target:tname with
                   | Some r when r.Tuning.Record.script = None ->
                       Printf.eprintf
                         "warning: record for %s on %s has no script \
                          provenance (schema %d); replaying raw move \
                          strings, which is deprecated — re-tune with \
                          --db to upgrade the record\n"
                         e.label tname r.Tuning.Record.schema
                   | _ -> ());
                   moves)
       in
       let ctx = Ctx.with_warm_start warm_start ctx in
       let outcome = Perfdojo.optimize_ctx ~ctx strat t p in
       Printf.printf "kernel:     %s (%s)\n" e.label e.shape_desc;
       Printf.printf "target:     %s\n" (Machine.Desc.target_name t);
       Printf.printf "strategy:   %s%s\n" strategy
         (if warm_start <> [] then
            Printf.sprintf " (warm-started from %d recorded moves)"
              (List.length warm_start)
          else "");
       Printf.printf "naive:      %.3e s\n" t_naive;
       Printf.printf "optimized:  %.3e s (%.2fx, %d evaluations)\n"
         outcome.time_s (t_naive /. outcome.time_s) outcome.evaluations;
       if outcome.failures > 0 then
         Printf.printf
           "failures:   %d evaluation(s) quarantined (search degraded \
            gracefully)\n"
           outcome.failures;
       (match ctx.Ctx.cache with
       | Some c ->
           Printf.printf
             "memoization: %d hits / %d misses (%.1f%% hit rate, %d model \
              evaluations saved)\n"
             (Tuning.Cache.hits c) (Tuning.Cache.misses c)
             (100. *. Tuning.Cache.hit_rate c)
             (Tuning.Cache.hits c)
       | None -> ());
       if outcome.moves <> [] then begin
         print_endline "moves:";
         List.iter (Printf.printf "  %s\n") outcome.moves
       end;
       print_endline "schedule:";
       print_endline (Ir.Printer.body outcome.schedule);
       (* deposit the winner into the database *)
       (match (db, common.co_db) with
       | Some d, Some f ->
           if outcome.moves = [] then
             Printf.eprintf
               "note: %s produced no move-replayable schedule; not recorded\n"
               strategy
           else
             Obs.Span.run ?metrics:ctx.Ctx.metrics ~trace:ctx.Ctx.obs
               "db-write" (fun () ->
                 match
                   Tuning.Warmstart.record_of
                     ~objective:(fun q -> Machine.time t q)
                     ~caps:(Perfdojo.caps_of ~ctx t) ~kernel:e.label
                     ~target:tname ~root:p ~moves:outcome.moves
                     ~evals:outcome.evaluations
                 with
                 | Error msg -> Printf.eprintf "note: not recorded: %s\n" msg
                 | Ok r ->
                     let verdict =
                       match Tuning.Db.add d r with
                       | `Inserted -> "new record"
                       | `Improved -> "improved record"
                       | `Duplicate -> "no improvement over recorded best"
                     in
                     Tuning.Db.save d f;
                     Printf.printf "db:         %s (%s, %d records)\n" f
                       verdict (Tuning.Db.size d))
       | _ -> ());
       if check then begin
         let small = e.build_small () in
         let small_ctx =
           Ctx.(
             default |> with_seed common.co_seed |> with_jobs common.co_jobs)
         in
         let small_outcome =
           Perfdojo.optimize_ctx ~ctx:small_ctx strat t small
         in
         match Interp.equivalent small small_outcome.schedule with
         | Ok () -> print_endline "numerical check (small variant): OK"
         | Error msg -> Printf.printf "numerical check FAILED: %s\n" msg
       end;
       if emit_c then begin
         print_endline "/* generated C */";
         print_string (Codegen.program outcome.schedule)
       end;
       Ok ()
  in
  let c_arg =
    Arg.(value & flag & info [ "c" ] ~doc:"Print C for the winning schedule.")
  in
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Re-run the strategy on a small variant of the kernel and \
             verify numerically against the reference interpreter.")
  in
  let warm_arg =
    Arg.(
      value & flag
      & info [ "warm-start" ]
          ~doc:
            "Seed the search from the database's best recorded schedule \
             for this kernel/target (requires --db).")
  in
  Cmd.v
    (Cmd.info "optimize" ~doc:"Optimize a kernel for a target machine.")
    Term.(
      ret
        (const run $ kernel_arg $ target_arg $ strategy_arg $ budget_arg
       $ common_opts $ c_arg $ check_arg $ warm_arg))

(* ------------------------------------------------------------------ *)
(* db: inspect the tuning database                                     *)
(* ------------------------------------------------------------------ *)

let db_list_cmd =
  let run db_file =
    to_ret
    @@ let* db = load_db db_file in
       let records = Tuning.Db.records db in
       if records = [] then Printf.printf "%s: empty\n" db_file
       else begin
         Printf.printf "%-14s %-8s %-12s %6s %6s  %s\n" "kernel" "target"
           "best_time" "evals" "moves" "fingerprint";
         List.iter
           (fun (r : Tuning.Record.t) ->
             Printf.printf "%-14s %-8s %-12s %6d %6d  %s\n" r.kernel r.target
               (Printf.sprintf "%.3e" r.best_time)
               r.evals (List.length r.moves)
               (String.sub r.fingerprint 0 12))
           records
       end;
       Ok ()
  in
  Cmd.v
    (Cmd.info "list" ~doc:"Summarize every record in the tuning database.")
    Term.(ret (const run $ db_file_arg))

let db_best_cmd =
  let run db_file kernel target =
    to_ret
    @@ let* db = load_db db_file in
       let* tname, _ = target_of_string target in
       match Tuning.Db.best db ~kernel ~target:tname with
       | None ->
           Error
             ( false,
               Printf.sprintf "no record for %s on %s in %s" kernel tname
                 db_file )
       | Some r ->
           (* metadata on stderr so stdout is a pure move trace, directly
              consumable by `perfdojo replay` / Engine.replay *)
           Printf.eprintf "# %s on %s: %.3e s (%d evals, fingerprint %s)\n"
             r.kernel r.target r.best_time r.evals r.fingerprint;
           List.iter print_endline r.moves;
           Ok ()
  in
  Cmd.v
    (Cmd.info "best"
       ~doc:
         "Print the best recorded move sequence for a kernel/target (one \
          move per line on stdout; replayable with `perfdojo replay`).")
    Term.(ret (const run $ db_file_arg $ kernel_arg $ target_arg))

(* Resolve a database record's (kernel, target) pair back to a root
   program and capability set — the replay context for feature
   extraction and offline surrogate training.  Records naming kernels
   or targets this build doesn't know are skipped, not errors: tuning
   databases outlive binaries. *)
let record_root ~kernel ~target =
  match Kernels.find_entry all_kernels kernel with
  | exception Invalid_argument _ -> None
  | e -> (
      match Machine.Desc.resolve_target target with
      | None -> None
      | Some (_, t) -> Some (e.build (), Machine.caps t))

let db_export_cmd =
  let run db_file kernel target k features =
    to_ret
    @@ let* db = load_db db_file in
       let* target =
         match target with
         | None -> Ok None
         | Some t ->
             let* tname, _ = target_of_string t in
             Ok (Some tname)
       in
       let records =
         match (kernel, target) with
         | None, None -> Tuning.Db.records db
         | _ -> Tuning.Db.query ?kernel ?target db
       in
       let records =
         match k with
         | None -> records
         | Some k -> List.filteri (fun i _ -> i < k) records
       in
       if not features then
         List.iter
           (fun r -> print_endline (Tuning.Record.to_json r))
           records
       else begin
         (* one (feature-vector, measured-time) training row per
            replayable record, as canonical JSONL *)
         let skipped = ref 0 in
         List.iter
           (fun (r : Tuning.Record.t) ->
             match record_root ~kernel:r.kernel ~target:r.target with
             | Some (root, caps)
               when Tuning.Record.matches_root
                      ~keys:(Tuning.Record.root_keys root)
                      r
                    && Float.is_finite r.best_time ->
                 let prog, _ =
                   Search.Stochastic.replay_skipping caps root r.moves
                 in
                 print_endline
                   (Util.Json.to_string
                      (Util.Json.Obj
                         [
                           ("kernel", Util.Json.Str r.kernel);
                           ("target", Util.Json.Str r.target);
                           ("time_s", Util.Json.Num r.best_time);
                           ( "features",
                             Surrogate.Features.to_json
                               (Surrogate.Features.extract prog) );
                         ]))
             | _ -> incr skipped)
           records;
         if !skipped > 0 then
           Printf.eprintf "# skipped %d unreplayable record(s)\n" !skipped
       end;
       Ok ()
  in
  let kernel_opt =
    Arg.(
      value
      & opt (some string) None
      & info [ "kernel"; "k" ] ~docv:"KERNEL" ~doc:"Only this kernel.")
  in
  let target_opt =
    Arg.(
      value
      & opt (some string) None
      & info [ "target"; "t" ] ~docv:"TARGET" ~doc:"Only this target.")
  in
  let top_opt =
    Arg.(
      value
      & opt (some int) None
      & info [ "top" ] ~docv:"N"
          ~doc:"Keep only the N fastest matching records.")
  in
  let features_opt =
    Arg.(
      value & flag
      & info [ "features" ]
          ~doc:
            "Instead of raw records, emit surrogate training rows: one \
             canonical-JSON object per replayable record with the \
             schedule's feature vector and its measured time.")
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:
         "Re-emit records as canonical JSONL on stdout, optionally \
          filtered by kernel/target and truncated to the top N.  With \
          $(b,--features), emit (feature-vector, time) training rows \
          instead.")
    Term.(
      ret
        (const run $ db_file_arg $ kernel_opt $ target_opt $ top_opt
       $ features_opt))

let db_cmd =
  Cmd.group
    (Cmd.info "db"
       ~doc:
         "Inspect the persistent tuning database (schedule records, one \
          JSON object per line).")
    [ db_list_cmd; db_best_cmd; db_export_cmd ]

(* ------------------------------------------------------------------ *)
(* model: the learned surrogate cost model                             *)
(* ------------------------------------------------------------------ *)

let model_train_cmd =
  let run db_file out lr margin =
    to_ret
    @@ let* db = load_db db_file in
       let cfg = { Surrogate.Model.default_config with lr; margin } in
       let m = Surrogate.Model.create ~cfg () in
       (* SIGINT/SIGTERM during training finish the pass and still save
          the model (the save is atomic) — the model file is the
          checkpoint; a second signal exits immediately *)
       Recover.Interrupt.install ();
       let stats =
         Surrogate.Model.train_offline m
           ~root_of:(fun ~kernel ~target -> record_root ~kernel ~target)
           (Tuning.Db.records db)
       in
       Surrogate.Model.save m out;
       if Recover.Interrupt.requested () then
         raise (Recover.Interrupt.Interrupted (Some out));
       Printf.printf "model:      %s\n" out;
       Printf.printf "records:    %d (%d replayable)\n"
         stats.Surrogate.Model.records stats.used;
       Printf.printf "groups:     %d with comparable pairs\n" stats.groups;
       Printf.printf "pairs:      %d\n" stats.pairs;
       Printf.printf "updates:    %d\n" (Surrogate.Model.updates m);
       Ok ()
  in
  let out_arg =
    let doc = "Where to write the trained model (canonical JSON)." in
    Arg.(
      value & opt string "surrogate.json" & info [ "out"; "o" ] ~docv:"FILE"
      ~doc)
  in
  let lr_arg =
    let doc = "Learning rate for the pairwise hinge updates." in
    Arg.(
      value
      & opt float Surrogate.Model.default_config.lr
      & info [ "lr" ] ~docv:"R" ~doc)
  in
  let margin_arg =
    let doc = "Required score margin between a faster and slower pair." in
    Arg.(
      value
      & opt float Surrogate.Model.default_config.margin
      & info [ "margin" ] ~docv:"M" ~doc)
  in
  Cmd.v
    (Cmd.info "train"
       ~doc:
         "Train a surrogate cost model offline from a tuning database: \
          every replayable record becomes a (features, time) point, \
          every same-kernel/target pair a ranking constraint.  The \
          output is byte-stable: same database, same flags, same file.")
    Term.(ret (const run $ db_file_arg $ out_arg $ lr_arg $ margin_arg))

let model_show_cmd =
  let run file =
    to_ret
    @@
    match Surrogate.Model.load file with
    | Error e -> Error (false, Printf.sprintf "%s: %s" file e)
    | Ok m ->
        let cfg = Surrogate.Model.config m in
        Printf.printf "dim:        %d\n" Surrogate.Features.dim;
        Printf.printf "lr:         %g\n" cfg.Surrogate.Model.lr;
        Printf.printf "margin:     %g\n" cfg.margin;
        Printf.printf "history:    %d\n" cfg.history;
        Printf.printf "updates:    %d\n" (Surrogate.Model.updates m);
        Ok ()
  in
  let file_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE")
  in
  Cmd.v
    (Cmd.info "show" ~doc:"Summarize a saved surrogate model file.")
    Term.(ret (const run $ file_arg))

let model_cmd =
  Cmd.group
    (Cmd.info "model"
       ~doc:
         "Train and inspect the learned surrogate cost model that \
          pre-ranks search candidates (see --surrogate / \
          --filter-ratio).")
    [ model_train_cmd; model_show_cmd ]

(* ------------------------------------------------------------------ *)
(* verify                                                              *)
(* ------------------------------------------------------------------ *)

let verify_cmd =
  let run kernel target =
    to_ret
    @@ let* e = find_kernel kernel in
       let* _, t = target_of_string target in
       let caps = Machine.caps t in
       let p = e.build_small () in
       (* apply every applicable instance once and verify each result:
          the paper's empirical validation of the applicability rules *)
       let insts = Transform.Xforms.all caps p in
       let failures = ref 0 in
       List.iter
         (fun (i : Transform.Xforms.instance) ->
           let p' = i.apply p in
           match Interp.equivalent ~tol:1e-4 p p' with
           | Ok () -> ()
           | Error msg ->
               incr failures;
               Printf.printf "FAIL %s: %s\n" (Transform.Xforms.describe i) msg)
         insts;
       Printf.printf "%d transformations verified on %s, %d failures\n"
         (List.length insts) e.label !failures;
       if !failures > 0 then
         Error (false, Printf.sprintf "%d transformations failed" !failures)
       else Ok ()
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Numerically verify every applicable transformation of a kernel \
          (small shape) against the reference interpreter.")
    Term.(ret (const run $ kernel_arg $ target_arg))

(* ------------------------------------------------------------------ *)
(* game: the interactive Dojo                                          *)
(* ------------------------------------------------------------------ *)

let game_cmd =
  let run kernel target trace_file =
    to_ret
    @@ let* e = find_kernel kernel in
       let* _, t = target_of_string target in
       let game = Game.start t (e.build ()) in
       let t0 = Machine.time t (Game.state game) in
       let print_state () =
         Printf.printf "\n%s\n" (Ir.Printer.body (Game.state game));
         let now = Machine.time t (Game.state game) in
         Printf.printf "runtime %.3e s  (%.2fx vs start)\n" now (t0 /. now)
       in
       let print_moves () =
         List.iter
           (fun (i, d) -> Printf.printf "%3d  %s\n" i d)
           (Game.moves game)
       in
       let save_trace () =
         match trace_file with
         | None -> ()
         | Some path ->
             let oc = open_out path in
             List.iter (fun m -> output_string oc (m ^ "\n"))
               (Game.moves_played game);
             close_out oc;
             Printf.printf "trace saved to %s\n" path
       in
       Printf.printf
         "PerfDojo game: %s on %s\n\
          commands: <n> play move n | m list moves | s show state | u undo |\n\
         \          u <k> undo k-th move back | v verify | c emit C | q quit\n"
         e.label
         (Machine.Desc.target_name t);
       print_state ();
       (try
          while true do
            print_string "> ";
            let line = String.trim (read_line ()) in
            match String.split_on_char ' ' line with
            | [ "q" ] | [ "quit" ] -> raise Exit
            | [ "m" ] -> print_moves ()
            | [ "s" ] -> print_state ()
            | [ "v" ] -> (
                match Game.verify game with
                | Ok () -> print_endline "numerically equivalent to start: OK"
                | Error msg -> Printf.printf "FAILED: %s\n" msg)
            | [ "c" ] -> print_string (Codegen.program (Game.state game))
            | [ "u" ] -> (
                match Game.undo game with
                | Some _ -> print_state ()
                | None -> print_endline "nothing to undo")
            | [ "u"; k ] -> (
                match int_of_string_opt k with
                | Some k -> (
                    match Game.undo_at game k with
                    | Some _ -> print_state ()
                    | None ->
                        print_endline
                          "cannot remove: later moves depend on it")
                | None -> print_endline "usage: u <k>")
            | [ n ] when int_of_string_opt n <> None -> (
                match int_of_string_opt n with
                | Some i -> (
                    try
                      let time = Game.play game i in
                      Printf.printf "-> %.3e s\n" time
                    with Invalid_argument m -> print_endline m)
                | None -> ())
            | [ "" ] -> ()
            | _ ->
                print_endline "unknown command (q m s u v c or a move number)"
          done
        with Exit | End_of_file -> ());
       save_trace ();
       Ok ()
  in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Save the played move sequence to FILE on exit.")
  in
  Cmd.v
    (Cmd.info "game"
       ~doc:
         "Play the performance game interactively: list moves, apply \
          them, watch the modelled runtime, undo, verify.")
    Term.(ret (const run $ kernel_arg $ target_arg $ trace_arg))

(* ------------------------------------------------------------------ *)
(* replay: apply a saved trace                                         *)
(* ------------------------------------------------------------------ *)

let replay_cmd =
  let run kernel target file emit_c =
    to_ret
    @@ let* e = find_kernel kernel in
       let* _, t = target_of_string target in
       let caps = Machine.caps t in
       (* "-" reads the trace from stdin, so `db best ... | replay K -`
          works as a pipeline *)
       let* ic =
         if file = "-" then Ok stdin
         else
           try Ok (open_in file)
           with Sys_error msg -> Error (false, msg)
       in
       let rec read acc =
         match input_line ic with
         | line -> read (String.trim line :: acc)
         | exception End_of_file ->
             if ic != stdin then close_in ic;
             List.rev acc
       in
       let moves =
         List.filter
           (fun l -> l <> "" && not (String.length l > 0 && l.[0] = '#'))
           (read [])
       in
       let p = e.build () in
       match Transform.Engine.replay_compat caps p moves with
       | Error msg -> Error (false, "replay failed: " ^ msg)
       | Ok result ->
           Printf.printf "replayed %d moves\n" (List.length moves);
           Printf.printf "runtime: %.3e s -> %.3e s\n" (Machine.time t p)
             (Machine.time t result);
           print_endline (Ir.Printer.body result);
           if emit_c then print_string (Codegen.program result);
           Ok ()
  in
  let file_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"TRACE")
  in
  let c_arg = Arg.(value & flag & info [ "c" ] ~doc:"Also print C.") in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Replay a move trace saved by the game command or printed by \
          `perfdojo db best` (# comment lines are ignored; TRACE may be \
          '-' for stdin).")
    Term.(ret (const run $ kernel_arg $ target_arg $ file_arg $ c_arg))

(* ------------------------------------------------------------------ *)
(* analyze: performance-model breakdown                                *)
(* ------------------------------------------------------------------ *)

let analyze_cmd =
  let run kernel target strategy budget common =
    to_ret
    @@ let* e = find_kernel kernel in
       let* _, t = target_of_string target in
       let* strat =
         if strategy = "none" then Ok None
         else Result.map Option.some (strategy_of_string budget strategy)
       in
       with_common common @@ fun ~ctx ~db:_ ->
       let sched =
         match strat with
         | None -> e.build ()
         | Some strat -> (Perfdojo.optimize_ctx ~ctx strat t (e.build ())).schedule
       in
       Printf.printf "kernel:   %s (%s), schedule: %s\n" e.label e.shape_desc
         strategy;
       Printf.printf "target:   %s\n" (Machine.Desc.target_name t);
       Printf.printf "runtime:  %.3e s   (%.2f GFLOP/s)\n"
         (Machine.time t sched) (Machine.gflops t sched);
       (match t with
       | Machine.Desc.Cpu c ->
           let b = Machine.Cpu_model.breakdown c sched in
           let cycles = Float.max b.comp b.mem +. b.ovh in
           Printf.printf
             "cycles:   %.3e   compute %.3e (%.0f%%)  memory %.3e (%.0f%%)  \
              overhead %.3e (%.0f%%)\n"
             cycles b.comp
             (100. *. b.comp /. cycles)
             b.mem
             (100. *. b.mem /. cycles)
             b.ovh
             (100. *. b.ovh /. cycles);
           Printf.printf "bound:    %s\n"
             (if b.mem > b.comp then "memory" else "compute")
       | Machine.Desc.Snitch sn ->
           let cycles = Machine.Snitch_sim.cycles sn sched in
           Printf.printf "cycles:   %.3e   fraction of peak: %.3f\n" cycles
             (Machine.Snitch_sim.peak_fraction sn sched)
       | Machine.Desc.Gpu g ->
           (* report per grid-mapped kernel *)
           let idx = ref 0 in
           Ir.Prog.iter_nodes
             (fun path node ->
               match node with
               | Ir.Types.Scope sc when sc.annot = Ir.Types.GpuGrid ->
                   let depth = Ir.Prog.depth_of_path sched path in
                   let st =
                     Machine.Gpu_model.analyze_kernel g sched depth sc
                   in
                   Printf.printf
                     "kernel %d: %.3e flops, %.3e B traffic, %.0f threads, \
                      wavefront eff %.2f, vectorized %b\n"
                     !idx st.flops st.traffic_bytes st.total_threads
                     st.wave_eff st.vectorized;
                   incr idx
               | _ -> ())
             sched;
           if !idx = 0 then
             print_endline "no GPU-mapped kernels: everything runs on the host");
       print_endline "\nschedule:";
       print_endline (Ir.Printer.body sched);
       Ok ()
  in
  let strategy_arg =
    let doc = "Schedule to analyze: none (naive) or any optimize strategy." in
    Arg.(value & opt string "none" & info [ "strategy"; "s" ] ~docv:"S" ~doc)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Explain where the modelled time goes (compute / memory / \
          overhead; per-GPU-kernel stats) for a kernel's naive or \
          optimized schedule.")
    Term.(
      ret
        (const run $ kernel_arg $ target_arg $ strategy_arg $ budget_arg
       $ common_opts))

(* ------------------------------------------------------------------ *)
(* lib generate: the automated library generation pipeline             *)
(* ------------------------------------------------------------------ *)

(* The paper's end product: optimize every (kernel, target) pair of the
   suite and emit a C library — one translation unit per pair, an
   umbrella header and a canonical manifest.json.  The heavy lifting
   (incremental skips, parallel pairs, degradation) is Libgen.generate;
   this command only parses the selection and prints the summary. *)
let lib_generate_cmd =
  let run targets kernel_labels strategy budget out force common =
    to_ret
    @@ let* resolved =
         List.fold_left
           (fun acc name ->
             let* acc = acc in
             let* pair = target_of_string name in
             Ok (pair :: acc))
           (Ok []) targets
       in
       let _ = (resolved : (string * Machine.Desc.target) list) in
       let* strat =
         match strategy with
         | None -> Ok None (* Libgen's default: annealing, budget 300 *)
         | Some s -> Result.map Option.some (strategy_of_string budget s)
       in
       let kernels =
         (* Kernels.find_entry raises on an unknown label; describe_exn
            renders it with the available labels at exit code 3 *)
         Option.map
           (List.map (Kernels.find_entry all_kernels))
           kernel_labels
       in
       with_common common @@ fun ~ctx ~db ->
       let lib =
         Libgen.generate ?kernels ?strategy:strat ?db
           ?db_file:common.co_db ~force ~ctx ~targets ~out ()
       in
       List.iter
         (fun (en : Libgen.entry) ->
           Printf.printf "%-9s %-14s %-8s %.3e s (%6.2fx)%s\n"
             (Libgen.status_name en.status)
             en.kernel en.target en.time_s
             (if en.time_s > 0. then en.naive_s /. en.time_s else 0.)
             (match en.error with None -> "" | Some msg -> "  [" ^ msg ^ "]"))
         lib.entries;
       Printf.printf
         "\nlibrary written to %s/ (%d entries: %d fresh, %d skipped, %d \
          degraded)\n"
         lib.out_dir
         (List.length lib.entries)
         lib.fresh lib.skipped lib.degraded;
       Printf.printf "header:     %s\nmanifest:   manifest.json\n" lib.header;
       (match common.co_db with
       | Some f ->
           Option.iter
             (fun d ->
               Printf.printf "db:         %s (%d records)\n" f
                 (Tuning.Db.size d))
             db
       | None -> ());
       if lib.degraded > 0 then
         Error
           ( false,
             Printf.sprintf "%d pair(s) degraded to the naive schedule"
               lib.degraded )
       else Ok ()
  in
  let targets_arg =
    let doc =
      "Target machine(s); repeatable.  "
      ^ String.concat ", " known_target_names ^ "."
    in
    Arg.(
      value
      & opt_all string [ "x86" ]
      & info [ "target"; "t" ] ~docv:"TARGET" ~doc)
  in
  let kernels_arg =
    let doc =
      "Comma-separated kernel labels to generate (default: the whole \
       suite)."
    in
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "kernels"; "k" ] ~docv:"K1,K2,..." ~doc)
  in
  let strategy_arg =
    let doc =
      "Strategy for fresh pairs (default: annealing — its winners are \
       move-replayable, so the next run skips them)."
    in
    Arg.(
      value & opt (some string) None & info [ "strategy"; "s" ] ~docv:"S" ~doc)
  in
  let out_arg =
    Arg.(
      value & opt string "perfdojo_lib"
      & info [ "out"; "o" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  let force_arg =
    Arg.(
      value & flag
      & info [ "force" ]
          ~doc:
            "Re-optimize pairs whose database record is up to date \
             (records still warm-start the searches).")
  in
  Cmd.v
    (Cmd.info "generate"
       ~doc:
         "Generate an optimized C library: optimize every (kernel, \
          target) pair — incrementally against the tuning database, in \
          parallel under --jobs, degrading failed pairs to their naive \
          schedules — and emit C sources, an umbrella header and a \
          canonical manifest.json.")
    Term.(
      ret
        (const run $ targets_arg $ kernels_arg $ strategy_arg $ budget_arg
       $ out_arg $ force_arg $ common_opts))

let lib_cmd =
  Cmd.group
    (Cmd.info "lib" ~doc:"Generate optimized kernel libraries.")
    [ lib_generate_cmd ]

(* ------------------------------------------------------------------ *)
(* serve: the tuning service                                           *)
(* ------------------------------------------------------------------ *)

let socket_arg =
  let doc = "Unix-domain socket path of the tuning service." in
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let deadline_arg =
  let doc =
    "Per-request queueing deadline in milliseconds; a request still \
     pending past it is answered with a typed deadline error.  0 \
     disables the deadline."
  in
  Arg.(value & opt int 0 & info [ "deadline-ms" ] ~docv:"MS" ~doc)

let serve_cmd =
  let run socket pipe queue_depth deadline_ms fuel budget (c : common) =
    to_ret
    @@ let* () =
         if c.co_max_retries < 0 then
           Error (true, "--max-retries must be non-negative")
         else Ok ()
       in
       let* faults =
         if c.co_fault_rate = 0. then Ok Robust.Faults.none
         else if c.co_fault_rate >= 0. && c.co_fault_rate <= 1. then
           Ok (Robust.Faults.spread ~seed:c.co_seed c.co_fault_rate)
         else Error (true, "--fault-rate must lie in [0, 1]")
       in
       let* () =
         if queue_depth < 1 then Error (true, "--queue-depth must be >= 1")
         else Ok ()
       in
       let* () =
         if c.co_filter_ratio <= 0. || c.co_filter_ratio > 1. then
           Error (true, "--filter-ratio must lie in (0, 1]")
         else if c.co_filter_ratio < 1. && c.co_surrogate = None then
           Error (true, "--filter-ratio below 1 requires --surrogate")
         else
           match c.co_surrogate with
           | Some f when f <> "" ->
               Error
                 ( true,
                   "serve shares one fresh model across requests; \
                    --surrogate takes no FILE here" )
           | _ -> Ok ()
       in
       let* transport =
         match (socket, pipe) with
         | Some path, false -> Ok (`Socket path)
         | None, true -> Ok `Pipe
         | Some _, true ->
             Error (true, "--socket and --pipe are mutually exclusive")
         | None, false -> Error (true, "serve needs --socket PATH or --pipe")
       in
       let trace_oc = Option.map open_out c.co_trace in
       let obs =
         match trace_oc with
         | None -> Obs.Trace.null
         | Some oc -> Obs.Trace.to_channel oc
       in
       let metrics =
         if c.co_stats then Some (Obs.Metrics.create ()) else None
       in
       let cfg =
         {
           Serve.Server.default_config with
           queue_depth;
           workers = max 1 c.co_jobs;
           default_budget = budget;
           deadline_ms;
           fuel;
           seed = c.co_seed;
           db_file = c.co_db;
           guard =
             { Robust.Guard.default with max_retries = c.co_max_retries };
           faults;
           obs;
           metrics;
           surrogate = c.co_surrogate <> None;
           filter_ratio = c.co_filter_ratio;
           dedup = c.co_dedup;
           visited_dedup = c.co_visited_dedup;
           exhaustive_depth = c.co_depth;
         }
       in
       (* create raises Failure on an unreadable database and run_socket
          raises Unix_error on an unbindable path — both reach the
          top-level one-line error handler (exit 3) *)
       let server = Serve.Server.create cfg in
       (* SIGINT and SIGTERM both stop the service gracefully on either
          transport: drain in-flight work, checkpoint the database +
          truncate the WAL, then exit through the Interrupted path
          (code 4).  The socket loop polls the flag between accepts;
          the pipe loop blocks in a read, so its handler raises to
          unwind the syscall and [stop] runs here. *)
       let interrupted = ref false in
       (match transport with
       | `Pipe ->
           Recover.Interrupt.install_raising ();
           (try Serve.Server.run_pipe server stdin stdout
            with Recover.Interrupt.Interrupted _ ->
              interrupted := true;
              Serve.Server.stop server)
       | `Socket path ->
           Recover.Interrupt.install ();
           Serve.Server.run_socket
             ~should_stop:(fun () -> Recover.Interrupt.requested ())
             ~on_ready:(fun () ->
               Printf.eprintf "perfdojo: serving on %s\n%!" path)
             server path;
           interrupted := Recover.Interrupt.requested ());
       (match trace_oc with Some oc -> close_out oc | None -> ());
       Option.iter (Printf.eprintf "trace:      %s\n") c.co_trace;
       (match metrics with
       | Some m -> Format.printf "%a" Obs.Metrics.pp_summary m
       | None -> ());
       if !interrupted then raise (Recover.Interrupt.Interrupted c.co_db);
       Ok ()
  in
  let pipe_arg =
    Arg.(
      value & flag
      & info [ "pipe" ]
          ~doc:
            "Serve framed requests on stdin/stdout instead of a socket \
             (one request per frame, answered in order) — the transport \
             tests and CI drive.")
  in
  let queue_arg =
    let doc =
      "Admission-control bound on the pending cold-request queue; \
       requests arriving beyond it are rejected immediately with a \
       typed overloaded response."
    in
    Arg.(value & opt int 16 & info [ "queue-depth" ] ~docv:"N" ~doc)
  in
  let fuel_arg =
    let doc =
      "Per-request evaluation fuel; a request that exhausts it degrades \
       to a typed faulted.exhausted error."
    in
    Arg.(value & opt (some int) None & info [ "fuel" ] ~docv:"N" ~doc)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the tuning service: warm queries answered from the \
          database in microseconds, cold requests searched on a worker \
          pool under admission control.")
    Term.(
      ret
        (const run $ socket_arg $ pipe_arg $ queue_arg $ deadline_arg
       $ fuel_arg $ budget_arg $ common_opts))

(* ------------------------------------------------------------------ *)
(* client: one request against a running service                       *)
(* ------------------------------------------------------------------ *)

let client_cmd =
  let run socket req kernel target strategy budget deadline_ms force
      timeout_ms retries =
    to_ret
    @@ let* socket =
         match socket with
         | Some s -> Ok s
         | None -> Error (true, "client needs --socket PATH")
       in
       let* () =
         match timeout_ms with
         | Some t when t < 1 -> Error (true, "--timeout-ms must be >= 1")
         | _ -> Ok ()
       in
       let* () =
         if retries < 1 then Error (true, "--retries must be >= 1")
         else Ok ()
       in
       let module P = Serve.Protocol in
       let* request =
         let need_kernel of_kernel =
           match kernel with
           | Some k -> Ok (of_kernel k)
           | None ->
               Error
                 (true, Printf.sprintf "request %S needs a KERNEL argument" req)
         in
         match req with
         | "stats" -> Ok (P.Stats { id = 1 })
         | "shutdown" -> Ok (P.Shutdown { id = 1 })
         | "query" ->
             need_kernel (fun kernel -> P.Query { id = 1; kernel; target })
         | "optimize" ->
             need_kernel (fun kernel ->
                 P.Optimize
                   { id = 1; kernel; target; strategy; budget; deadline_ms;
                     force })
         | "generate" ->
             need_kernel (fun kernel ->
                 P.Generate
                   { id = 1; kernel; target; strategy; budget; deadline_ms })
         | r ->
             Error
               ( true,
                 Printf.sprintf
                   "unknown request %S (optimize, query, generate, stats, \
                    shutdown)"
                   r )
       in
       (* Idempotent requests (all but shutdown) ride the bounded
          exponential-backoff retry over fresh connections, so the
          client survives a server restart mid-session; a still-dead
          server surfaces as the typed transport error after the last
          attempt.  Shutdown is sent exactly once — retrying it could
          stop a freshly restarted server — and its connect errors
          raise Unix_error into the one-line error handler (exit 3). *)
       let response =
         match request with
         | P.Shutdown _ ->
             Serve.Client.with_connection socket (fun conn ->
                 Serve.Client.request ?deadline_ms:timeout_ms conn request)
         | _ ->
             Serve.Client.request_retry ~attempts:retries
               ?deadline_ms:timeout_ms ~socket request
       in
       let* resp =
         match response with
         | Error e -> Error (false, Serve.Client.error_message e)
         | Ok r -> Ok r
       in
       match resp with
       | P.Optimized { kernel; target; warm; time_s; moves; evaluations;
                       failures; _ } ->
           Printf.printf "optimized:  %s @ %s (%s)\n" kernel target
             (if warm then "warm hit" else "cold search");
           Printf.printf "time:       %.3e s (%d evaluations, %d failures)\n"
             time_s evaluations failures;
           if moves <> [] then begin
             print_endline "moves:";
             List.iter (Printf.printf "  %s\n") moves
           end;
           Ok ()
       | P.Queried { kernel; target; found; time_s; moves; _ } ->
           if not found then begin
             Printf.printf "no record for %s @ %s\n" kernel target;
             Ok ()
           end
           else begin
             Printf.printf "recorded:   %s @ %s at %.3e s\n" kernel target
               time_s;
             List.iter (Printf.printf "  %s\n") moves;
             Ok ()
           end
       | P.Generated { kernel; target; warm; time_s; c_entry; c; _ } ->
           (* C on stdout, metadata on stderr, so the output pipes
              straight into a file or a compiler *)
           Printf.eprintf "generated:  %s @ %s -> %s at %.3e s (%s)\n" kernel
             target c_entry time_s
             (if warm then "warm hit" else "cold search");
           print_string c;
           Ok ()
       | P.Stats_reply { counters; gauges; _ } ->
           List.iter (fun (k, v) -> Printf.printf "%-32s %d\n" k v) counters;
           List.iter (fun (k, v) -> Printf.printf "%-32s %g\n" k v) gauges;
           Ok ()
       | P.Shutdown_ack { records; _ } ->
           Printf.printf "server stopped; %d records checkpointed\n" records;
           Ok ()
       | P.Error { code; msg; _ } ->
           Error
             ( false,
               Printf.sprintf "server: %s: %s" (P.error_code_name code) msg )
  in
  let req_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"REQUEST"
          ~doc:"One of optimize, query, generate, stats, shutdown.")
  in
  let client_kernel_arg =
    Arg.(value & pos 1 (some string) None & info [] ~docv:"KERNEL")
  in
  let force_arg =
    Arg.(
      value & flag
      & info [ "force" ]
          ~doc:"Search even when a warm database record exists.")
  in
  let timeout_arg =
    let doc =
      "Client-side response deadline in milliseconds: a request whose \
       reply does not arrive in time fails with a typed timeout \
       instead of blocking forever on a hung server.  The server may \
       still have executed it."
    in
    Arg.(
      value & opt (some int) None & info [ "timeout-ms" ] ~docv:"MS" ~doc)
  in
  let retries_arg =
    let doc =
      "Total connection attempts for idempotent requests (everything \
       but shutdown), with exponential backoff between them — rides \
       out a server restart.  1 (default) never retries."
    in
    Arg.(value & opt int 1 & info [ "retries" ] ~docv:"N" ~doc)
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Send one request to a running tuning service and print the \
             response.")
    Term.(
      ret
        (const run $ socket_arg $ req_arg $ client_kernel_arg $ target_arg
       $ strategy_arg $ budget_arg $ deadline_arg $ force_arg
       $ timeout_arg $ retries_arg))

(* ------------------------------------------------------------------ *)
(* script: the versioned schedule-script format (.pds)                  *)
(* ------------------------------------------------------------------ *)

let read_all ic =
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  Buffer.contents buf

let script_run_cmd =
  let run file kernel target db_file emit_c =
    to_ret
    @@ let* text =
         if file = "-" then Ok (read_all stdin)
         else
           try
             let ic = open_in file in
             let t = read_all ic in
             close_in ic;
             Ok t
           with Sys_error msg -> Error (false, msg)
       in
       let* script =
         match Transfo.Script.parse text with
         | Ok s -> Ok s
         | Error msg -> Error (false, Printf.sprintf "%s: %s" file msg)
       in
       (* explicit flags override the script's own kernel/target headers *)
       let* kernel_name =
         match (kernel, script.Transfo.Script.kernel) with
         | Some k, _ | None, Some k -> Ok k
         | None, None ->
             Error
               ( true,
                 "script names no kernel; pass --kernel (or add a \
                  'kernel NAME' line)" )
       in
       let target_name =
         match (target, script.Transfo.Script.ktarget) with
         | Some t, _ | None, Some t -> t
         | None, None -> "x86"
       in
       let* e = find_kernel kernel_name in
       let* tname, t = target_of_string target_name in
       (* every registered composite is in scope: a script names its
          transformations explicitly, so there is nothing to opt into *)
       let caps = Transfo.Composites.enable ~names:[ "all" ] (Machine.caps t) in
       let p = e.build () in
       match Transfo.Script.run caps p script with
       | Error err ->
           Error (false, Transfo.Script.run_error_to_string err)
       | Ok (result, provenance) ->
           Printf.printf "script:     %s (%d statements, %d atomic moves)\n"
             file
             (List.length script.Transfo.Script.stmts)
             (List.length provenance);
           Printf.printf "kernel:     %s (%s)\n" e.label e.shape_desc;
           Printf.printf "target:     %s\n" (Machine.Desc.target_name t);
           Printf.printf "runtime:    %.3e s -> %.3e s (%.2fx)\n"
             (Machine.time t p) (Machine.time t result)
             (Machine.time t p /. Machine.time t result);
           Printf.printf "fingerprint: %s\n"
             (Tuning.Record.fingerprint result);
           (* --db: check the script lands exactly on the recorded best *)
           let* () =
             match db_file with
             | None -> Ok ()
             | Some f -> (
                 let* db = load_db f in
                 match
                   Tuning.Db.best db ~kernel:e.label ~target:tname
                 with
                 | None ->
                     Printf.printf
                       "db:         no record for %s on %s in %s\n" e.label
                       tname f;
                     Ok ()
                 | Some r ->
                     let replayed, _ =
                       Search.Stochastic.replay_skipping caps p r.moves
                     in
                     if
                       String.equal
                         (Ir.Printer.program replayed)
                         (Ir.Printer.program result)
                       && String.equal
                            (Tuning.Record.fingerprint replayed)
                            (Tuning.Record.fingerprint result)
                     then begin
                       Printf.printf
                         "db:         matches recorded best byte-for-byte \
                          (%.3e s)\n"
                         r.best_time;
                       Ok ()
                     end
                     else
                       Error
                         ( false,
                           Printf.sprintf
                             "script result differs from the recorded best \
                              (%s vs %s)"
                             (Tuning.Record.fingerprint result)
                             (Tuning.Record.fingerprint replayed) ))
           in
           print_endline "schedule:";
           print_endline (Ir.Printer.body result);
           if emit_c then begin
             print_endline "/* generated C */";
             print_string (Codegen.program result)
           end;
           Ok ()
  in
  let file_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE")
  in
  let kernel_opt =
    Arg.(
      value
      & opt (some string) None
      & info [ "kernel"; "k" ] ~docv:"KERNEL"
          ~doc:"Kernel to apply the script to (overrides the script header).")
  in
  let target_opt =
    Arg.(
      value
      & opt (some string) None
      & info [ "target"; "t" ] ~docv:"TARGET"
          ~doc:"Target machine (overrides the script header).")
  in
  let db_opt =
    Arg.(
      value
      & opt (some string) None
      & info [ "db" ] ~docv:"FILE"
          ~doc:
            "Compare the script's result against the database's recorded \
             best for this kernel/target; fails unless they match \
             byte-for-byte.")
  in
  let c_arg =
    Arg.(value & flag & info [ "c" ] ~doc:"Also print the generated C.")
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Execute a schedule script (.pds): resolve each selector, apply \
          each named transformation all-or-nothing, print the resulting \
          schedule.  FILE may be '-' for stdin.")
    Term.(
      ret (const run $ file_arg $ kernel_opt $ target_opt $ db_opt $ c_arg))

let script_export_cmd =
  let run db_file kernel target =
    to_ret
    @@ let* db = load_db db_file in
       let* tname, _ = target_of_string target in
       match Tuning.Db.best db ~kernel ~target:tname with
       | None ->
           Error
             ( false,
               Printf.sprintf "no record for %s on %s in %s" kernel tname
                 db_file )
       | Some r ->
           (match r.Tuning.Record.script with
           | Some s -> print_string s
           | None ->
               (* pre-script record: derive the script from the recorded
                  moves — same conversion the database write path uses *)
               Printf.eprintf
                 "note: record predates script provenance (schema %d); \
                  deriving the script from its recorded moves\n"
                 r.Tuning.Record.schema;
               print_string
                 (Transfo.Script.to_string
                    (Transfo.Script.of_moves ~kernel:r.Tuning.Record.kernel
                       ~ktarget:r.Tuning.Record.target r.Tuning.Record.moves)));
           Ok ()
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:
         "Print the recorded best schedule for a kernel/target as a \
          schedule script (.pds) on stdout, replayable with `perfdojo \
          script run`.")
    Term.(ret (const run $ db_file_arg $ kernel_arg $ target_arg))

let script_list_cmd =
  let run () =
    print_endline "composite transformations (usable in scripts and with \
                   --composites):";
    List.iter
      (fun (c : Transfo.Composites.composite) ->
        let params =
          if c.params = [] then ""
          else
            "("
            ^ String.concat ", " (List.map (fun (k, _) -> k ^ "=N") c.params)
            ^ ")"
        in
        Printf.printf "  %-24s %s\n" (c.cname ^ params) c.doc;
        List.iter
          (fun (k, d) -> Printf.printf "      %-8s %s\n" k d)
          c.params)
      Transfo.Composites.all
  in
  Cmd.v
    (Cmd.info "list"
       ~doc:
         "List the registered composite transformations with their \
          parameters.")
    Term.(const run $ const ())

let script_cmd =
  Cmd.group
    (Cmd.info "script"
       ~doc:
         "Work with schedule scripts (.pds): versioned, human-readable \
          selector-targeted schedules that replace raw move indices.")
    [ script_run_cmd; script_export_cmd; script_list_cmd ]

(* Uncaught exceptions must not dump a raw backtrace at the user: every
   predictable failure becomes a one-line `perfdojo: error: ...` on
   stderr and a non-zero exit.  PERFDOJO_DEBUG=1 re-raises instead (with
   backtrace recording on), for actual debugging. *)
let describe_exn = function
  | Sys_error msg -> Some msg
  | Unix.Unix_error (err, fn, arg) ->
      Some
        (Printf.sprintf "%s%s: %s" fn
           (if arg = "" then "" else " " ^ arg)
           (Unix.error_message err))
  | Ir.Validate.Invalid errs ->
      Some
        ("invalid program: "
        ^ String.concat "; " (List.map Ir.Validate.error_to_string errs))
  | Ir.Parser.Parse_error msg -> Some ("parse error: " ^ msg)
  | Perfdojo.Portfolio_failed members ->
      Some
        ("every portfolio member failed: "
        ^ String.concat "; "
            (List.map (fun (label, e) -> label ^ ": " ^ e) members))
  | Failure msg -> Some msg
  | Invalid_argument msg
    when String.length msg >= 14 && String.sub msg 0 14 = "unknown kernel" ->
      (* Kernels.find_entry's bare error, e.g. from `lib generate
         --kernels`: append what would have worked *)
      Some
        (Printf.sprintf "%s (available: %s)" msg
           (String.concat ", "
              (List.map (fun (e : Kernels.entry) -> e.label) all_kernels)))
  | Invalid_argument msg -> Some msg
  | _ -> None

let () =
  let doc = "PerfDojo: transformation-centric kernel optimization." in
  let info = Cmd.info "perfdojo" ~version:"1.0.0" ~doc in
  let debug = Sys.getenv_opt "PERFDOJO_DEBUG" = Some "1" in
  if debug then Printexc.record_backtrace true;
  (* catch:false: Cmdliner would otherwise swallow body exceptions into
     its own backtrace box; we want the one-line rendering below (or a
     real backtrace under PERFDOJO_DEBUG=1). *)
  let eval () =
    Cmd.eval ~catch:false
      (Cmd.group info
         [
           kernel_cmd; lib_cmd; db_cmd; model_cmd; script_cmd; serve_cmd;
           client_cmd;
           (* the established flat spellings, aliasing the same terms *)
           list_cmd; targets_cmd; show_cmd; moves_cmd; optimize_cmd;
           verify_cmd; game_cmd; replay_cmd; lib_generate_cmd; analyze_cmd;
         ])
  in
  (* SIGINT/SIGTERM land here after the engine's final checkpoint:
     one line naming the file, exit 4 — distinct from error (3) and
     from the second-signal immediate exit (130) — so wrappers can
     tell "resume me" from "I failed". *)
  let interrupted path =
    (match path with
    | Some p ->
        Printf.eprintf "perfdojo: interrupted, checkpoint written to %s\n" p
    | None -> Printf.eprintf "perfdojo: interrupted\n");
    4
  in
  let code =
    if debug then
      match eval () with
      | code -> code
      | exception Recover.Interrupt.Interrupted path -> interrupted path
    else
      match eval () with
      | code -> code
      | exception Recover.Interrupt.Interrupted path -> interrupted path
      | exception Recover.Error e ->
          Printf.eprintf "perfdojo: error: %s\n" (Recover.error_message e);
          3
      | exception e ->
          let msg =
            match describe_exn e with
            | Some msg -> msg
            | None -> Printexc.to_string e
          in
          Printf.eprintf "perfdojo: error: %s\n" msg;
          3
  in
  exit code
