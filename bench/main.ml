(* Benchmark / experiment driver.

   `dune exec bench/main.exe`                runs every experiment
   `dune exec bench/main.exe -- fig7 fig8`   runs a subset
   `dune exec bench/main.exe -- framework`   Bechamel micro-benchmarks of
                                             the framework itself
   `dune exec bench/main.exe -- tuning --db tune.jsonl`
                                             tuning-database trajectory
                                             against a persistent store

   The tuning experiment writes a machine-readable BENCH_tuning.json
   (cache hit rates, evals saved, best runtimes).

   Environment: PERFDOJO_BUDGET (search evaluations per kernel, default
   300; the paper uses 1000), PERFDOJO_RL_EPISODES (default 14). *)

let run_framework_microbench () =
  Report.header
    "Framework micro-benchmarks (Bechamel): the tooling itself";
  let open Bechamel in
  let open Toolkit in
  let caps = Machine.caps (Machine.Desc.Cpu Machine.Desc.avx512_cpu) in
  let softmax = Kernels.softmax ~n:64 ~m:64 in
  let softmax_small = Kernels.softmax ~n:4 ~m:8 in
  let text = Ir.Printer.program softmax in
  let tests =
    [
      Test.make ~name:"printer.softmax" (Staged.stage (fun () ->
          ignore (Ir.Printer.program softmax)));
      Test.make ~name:"parser.softmax" (Staged.stage (fun () ->
          ignore (Ir.Parser.program text)));
      Test.make ~name:"validate.softmax" (Staged.stage (fun () ->
          ignore (Ir.Validate.check softmax)));
      Test.make ~name:"xforms.discovery.softmax" (Staged.stage (fun () ->
          ignore (Transform.Xforms.all caps softmax)));
      Test.make ~name:"interp.softmax.4x8" (Staged.stage (fun () ->
          let t = Interp.alloc_tensors softmax_small in
          Interp.run softmax_small t));
      Test.make ~name:"cpu_model.softmax" (Staged.stage (fun () ->
          ignore (Machine.Cpu_model.time Machine.Desc.avx512_cpu softmax)));
      Test.make ~name:"snitch_sim.gemv" (Staged.stage (fun () ->
          ignore
            (Machine.Snitch_sim.time Machine.Desc.snitch_cluster
               (Kernels.gemv ~m:64 ~n:64))));
      Test.make ~name:"embed.softmax" (Staged.stage (fun () ->
          ignore (Rl.Embed.embed softmax)));
      Test.make ~name:"gpu_model.mul" (Staged.stage (fun () ->
          ignore
            (Machine.Gpu_model.time Machine.Desc.gh200
               (Kernels.mul ~n:6 ~m:14336))));
    ]
  in
  let benchmark test =
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:(Some 500) ()
    in
    Benchmark.all cfg instances test
  in
  let analyze results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true
        ~predictors:Measure.[| run |]
    in
    Analyze.all ols Instance.monotonic_clock results
  in
  let test = Test.make_grouped ~name:"perfdojo" ~fmt:"%s %s" tests in
  let results = benchmark test in
  let results = analyze results in
  Hashtbl.iter
    (fun name result ->
      match Bechamel.Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "  %-36s %12.1f ns/run\n" name est
      | _ -> Printf.printf "  %-36s (no estimate)\n" name)
    results

(* Strip `--db FILE` and `--fault-rate R` from the argument list,
   routing them to the tuning / fault-tolerance experiments. *)
let rec extract_db = function
  | [] -> []
  | "--db" :: file :: rest ->
      Experiments.tuning_db_file := Some file;
      extract_db rest
  | "--fault-rate" :: rate :: rest ->
      (match float_of_string_opt rate with
      | Some r when r >= 0. && r <= 1. -> Experiments.fault_rate := r
      | _ ->
          Printf.eprintf "ignoring --fault-rate %S (want a float in [0,1])\n"
            rate);
      extract_db rest
  | arg :: rest -> arg :: extract_db rest

let () =
  let args = Array.to_list Sys.argv |> List.tl |> extract_db in
  let t0 = Sys.time () in
  (* Per-experiment wall-clock spans, written as a JSONL sidecar so a
     bench run leaves a machine-readable account of where its time
     went. *)
  let trace = Obs.Trace.make_buffer () in
  let timed name f = Obs.Span.run ~trace ("experiment." ^ name) f in
  (match args with
  | [] ->
      List.iter (fun (name, f) -> timed name f) Experiments.all;
      timed "framework" run_framework_microbench
  | [ "framework" ] -> timed "framework" run_framework_microbench
  | names ->
      List.iter
        (fun name ->
          if name = "framework" then timed "framework" run_framework_microbench
          else
            match List.assoc_opt name Experiments.all with
            | Some f -> timed name f
            | None ->
                Printf.eprintf "unknown experiment %S; available: %s\n" name
                  (String.concat ", "
                     ("framework" :: List.map fst Experiments.all)))
        names);
  let oc = open_out "BENCH_trace.jsonl" in
  List.iter
    (fun ev ->
      output_string oc (Util.Json.to_string ev);
      output_char oc '\n')
    (Obs.Trace.events trace);
  close_out oc;
  print_endline "wrote BENCH_trace.jsonl";
  Printf.printf "\n[bench completed in %.1f s CPU]\n" (Sys.time () -. t0)
