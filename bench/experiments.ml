(* The experiment harness: one entry per table / figure of the paper's
   evaluation (see DESIGN.md for the index).  Every experiment prints the
   rows/series the paper reports; EXPERIMENTS.md records paper-vs-measured
   for each. *)

open Perfdojo
module Desc = Machine.Desc
module Stoch = Search.Stochastic

let snitch = Desc.snitch_cluster
let target_snitch = Desc.Snitch snitch
let caps_snitch = Machine.caps target_snitch
let xeon = Desc.xeon_e5_2695v4
let target_x86 = Desc.Cpu xeon
let caps_x86 = Machine.caps target_x86
let gh200 = Desc.gh200
let mi300a = Desc.mi300a

let time target p = Machine.time target p

(* ------------------------------------------------------------------ *)
(* Table 1: representation feature matrix                              *)
(* ------------------------------------------------------------------ *)

let table1 () =
  Report.header "Table 1: Features available in representations";
  Report.table
    [ "feature"; "GCC"; "Polly"; "Halide"; "DaCe"; "TVM"; "PerfDojo" ]
    [
      [ "Manual transformations"; "x"; "x"; "y"; "y"; "y"; "y" ];
      [ "Semantic preservation"; "y"; "y"; "x"; "x"; "y"; "y" ];
      [ "Atomic transformations"; "x"; "x"; "x"; "x"; "y"; "y" ];
      [ "Heuristics not required"; "x"; "x"; "y"; "y"; "x"; "y" ];
      [ "Unconstrained search space"; "x"; "y"; "x"; "y"; "x"; "y" ];
      [ "Non-destructive transformations"; "x"; "y"; "x"; "x"; "x"; "y" ];
    ];
  print_endline
    "\nPerfDojo column is exercised by this repository's test suite:";
  print_endline
    "  manual transformations + semantic preservation -> test_transform.ml";
  print_endline "  atomic moves + undo (non-destructive)        -> engine tests";
  print_endline "  no heuristics required                       -> PerfLLM (test_rl.ml)"

(* ------------------------------------------------------------------ *)
(* Table 2: supported representation features                          *)
(* ------------------------------------------------------------------ *)

let table2 () =
  Report.header "Table 2: Supported representation features";
  let show label text =
    let p = Ir.Parser.program text in
    Ir.Validate.check_exn p;
    (* run it to prove the interpreter supports the feature *)
    let rng = Util.Rng.create 1 in
    let t = Interp.random_inputs rng p in
    Interp.run p t;
    Printf.printf "%-22s %s\n" label
      (String.concat "  |  "
         (List.filter
            (fun l -> String.trim l <> "")
            (String.split_on_char '\n' (Ir.Printer.body p))))
  in
  show "Element-wise"
    ("x f32 [4, 6] heap\ny f32 [4, 6] heap\nz f32 [4, 6] heap\n"
   ^ "inputs: x, y\noutputs: z\n4\n| 6\n| | z[{0},{1}] = x[{0},{1}] * y[{0},{1}]\n");
  show "Broadcast"
    ("x f32 [4] heap\nz f32 [4, 6] heap\ninputs: x\noutputs: z\n"
   ^ "4\n| 6\n| | z[{0},{1}] = x[{0}]\n");
  show "Constant as value"
    ("x f32 [4, 6] heap\nz f32 [4, 6] heap\ninputs: x\noutputs: z\n"
   ^ "4\n| 6\n| | z[{0},{1}] = x[{0},{1}] * 3\n");
  show "Index as value"
    ("x f32 [4, 6] heap\nz f32 [4, 6] heap\ninputs: x\noutputs: z\n"
   ^ "4\n| 6\n| | z[{0},{1}] = x[{0},{1}] * {0}\n");
  show "Reduction"
    ("x f32 [4, 6] heap\nz f32 [4] heap\ninputs: x\noutputs: z\n"
   ^ "4\n| z[{0}] = 0\n| 6\n| | z[{0}] = z[{0}] + x[{0},{1}]\n");
  print_endline
    "\nExcluded by design (semantic preservation, as in the paper):";
  print_endline
    "  indirection, data-dependent range, dependent iteration, general control flow"

(* ------------------------------------------------------------------ *)
(* Table 3: the ML operator set                                        *)
(* ------------------------------------------------------------------ *)

let table3 () =
  Report.header "Table 3: ML operators optimized using PerfLLM";
  Report.table
    [ "label"; "input shape"; "description"; "flops"; "buffers" ]
    (List.map
       (fun (e : Kernels.entry) ->
         let p = e.build () in
         [
           e.label;
           e.shape_desc;
           e.description;
           Printf.sprintf "%.3e" (float_of_int (Ir.Prog.total_flops p));
           string_of_int (List.length p.buffers);
         ])
       Kernels.table3)

(* ------------------------------------------------------------------ *)
(* Figure 3: softmax representations                                   *)
(* ------------------------------------------------------------------ *)

let fig3 () =
  Report.header "Figure 3: Softmax kernel representations";
  let p = Kernels.softmax ~n:24576 ~m:512 in
  Report.subheader "(b) textual form";
  print_string (Ir.Printer.program p);
  Report.subheader "(d) generated C (naive schedule)";
  print_string (Codegen.program p);
  Report.subheader "generated C (optimized x86 schedule)";
  let opt = Search.Passes.cpu_heuristic caps_x86 p in
  print_string (Codegen.program opt)

(* ------------------------------------------------------------------ *)
(* Figure 5: reuse_dims needs prior fusion                             *)
(* ------------------------------------------------------------------ *)

let fig5 () =
  Report.header "Figure 5: reuse_dims is only offered after join_scopes";
  let text =
    "x f32 [6] heap\nt f32 [6] heap\nz f32 [6] heap\n"
    ^ "inputs: x\noutputs: z\n6\n| t[{0}] = x[{0}] * 2\n"
    ^ "6\n| z[{0}] = t[{0}] + 1\n"
  in
  let p = Ir.Parser.program text in
  let offered prog name target =
    List.exists
      (fun (i : Transform.Xforms.instance) ->
        i.xname = name && i.target = target)
      (Transform.Xforms.all caps_x86 prog)
  in
  Printf.printf "before fusion: reuse_dims(t dim 0) offered = %b\n"
    (offered p "reuse_dims" "t dim 0");
  let joined =
    (List.find
       (fun (i : Transform.Xforms.instance) -> i.xname = "join_scopes")
       (Transform.Xforms.all caps_x86 p))
      .apply p
  in
  Printf.printf "after fusion:  reuse_dims(t dim 0) offered = %b\n"
    (offered joined "reuse_dims" "t dim 0");
  (* demonstrate that the blocked application really is wrong *)
  let forced =
    Ir.Prog.replace_buffer p
      { (Ir.Prog.buffer_by_name p "t") with reuse = [ true ] }
  in
  (match Interp.equivalent p forced with
  | Ok () -> print_endline "unexpected: forced reuse passed"
  | Error e -> Printf.printf "forcing reuse without fusion fails: %s\n" e);
  let safe =
    Ir.Prog.replace_buffer joined
      { (Ir.Prog.buffer_by_name joined "t") with reuse = [ true ] }
  in
  match Interp.equivalent p safe with
  | Ok () -> print_endline "reuse after fusion verifies numerically: OK"
  | Error e -> Printf.printf "unexpected failure: %s\n" e

(* ------------------------------------------------------------------ *)
(* Figure 6: original vs Max Q-learning on the paper's toy MDP         *)
(* ------------------------------------------------------------------ *)

(* The example of Figure 6: from S0, action a0 stops immediately with a
   decent reward; action a1 walks through *worse* states — enabling
   transformations that temporarily degrade performance, the plateaus of
   Figure 9 — before reaching S3, the best achievable state.  Standard
   Q-learning maximizes the expected cumulative reward, which the
   negative intermediate steps pull below the stop value; Max Q-learning
   propagates the peak and picks a1.  Reproduced with exact tabular
   value iteration over the two Bellman operators. *)
let fig6 () =
  Report.header "Figure 6: Q-value updates, original vs Max Q-learning";
  (* states 0..3; transitions: (state, action) -> (next, reward);
     action 0 = stop (terminal), action 1 = continue *)
  let gamma = 0.9 in
  let step s a =
    match (s, a) with
    | 0, 0 -> Some (-1, 1.0) (* stop: decent immediate reward *)
    | 0, 1 -> Some (1, -1.0) (* enabling move: temporarily slower *)
    | 1, 0 -> Some (-1, -1.0)
    | 1, 1 -> Some (2, -1.0)
    | 2, 0 -> Some (-1, -1.0)
    | 2, 1 -> Some (3, 3.0) (* S3: the best achievable state *)
    | 3, _ -> None (* terminal *)
    | _ -> None
  in
  let solve max_bellman =
    let q = Array.make_matrix 4 2 0.0 in
    for _ = 1 to 200 do
      for s = 0 to 3 do
        for a = 0 to 1 do
          match step s a with
          | None -> q.(s).(a) <- 0.0
          | Some (s', r) ->
              let future =
                if s' < 0 then 0.0
                else Float.max q.(s').(0) q.(s').(1)
              in
              q.(s).(a) <-
                (if max_bellman then Float.max r (gamma *. future)
                 else r +. (gamma *. future))
        done
      done
    done;
    q
  in
  let orig = solve false and maxq = solve true in
  Report.table
    [ "objective"; "Q(S0,stop)"; "Q(S0,continue)"; "chosen action" ]
    [
      [
        "original Q-learning";
        Report.f3 orig.(0).(0);
        Report.f3 orig.(0).(1);
        (if orig.(0).(0) >= orig.(0).(1) then "stop" else "continue");
      ];
      [
        "Max Q-learning";
        Report.f3 maxq.(0).(0);
        Report.f3 maxq.(0).(1);
        (if maxq.(0).(0) >= maxq.(0).(1) then "stop" else "continue");
      ];
    ];
  print_endline
    "\n(enabling transformations temporarily degrade performance, so the\n\
    \ cumulative objective stops immediately while Max Q-learning pursues\n\
    \ the peak-reward state S3, as in the paper's example)"

(* ------------------------------------------------------------------ *)
(* Figures 4 and 9: the manual softmax journey on an AVX-512 CPU       *)
(* ------------------------------------------------------------------ *)

(* A scripted manual optimization session: at each step, pick the first
   applicable move whose description contains the given pattern. *)
let journey target prog (script : string list) =
  let game = Game.start target prog in
  let steps = ref [ ("(start)", Machine.time target prog) ] in
  List.iter
    (fun pattern ->
      let contains s sub =
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
        m = 0 || go 0
      in
      match
        List.find_opt
          (fun (_, d) -> contains d pattern)
          (Game.moves game)
      with
      | Some (i, d) ->
          let t = Game.play game i in
          steps := (d, t) :: !steps
      | None -> Printf.printf "  (skipped: %s not applicable)\n" pattern)
    script;
  (game, List.rev !steps)

let softmax_script =
  [
    (* fuse the exponentiation with the sum accumulation: one pass over
       the row instead of two *)
    "join_scopes([0,3])";
    (* enabling moves with no immediate effect (the plateaus of Fig. 9):
       localize the row temporaries *)
    "set_storage(mx -> stack)";
    "set_storage(s -> stack)";
    (* parallelize over rows *)
    "parallelize([0])";
    (* break the max-reduction dependency chain with 8 partial
       accumulators, unrolled into independent chains *)
    "split_reduction([0,1] into 8)";
    "unroll([0,2,0])";
    (* vectorize the division loop: tile to the AVX-512 width first *)
    "split_scope([0,6] factor 16)";
    "vectorize([0,6,0])";
  ]

let fig4_9 () =
  Report.header
    "Figures 4 & 9: manual transformation journey (softmax, AVX-512 CPU)";
  let avx = Desc.avx512_cpu in
  let target = Desc.Cpu avx in
  let p = Kernels.softmax ~n:24576 ~m:512 in
  let game, steps = journey target p softmax_script in
  Report.table
    [ "step"; "move"; "runtime (s)"; "speedup vs start" ]
    (List.mapi
       (fun i (d, t) ->
         [
           string_of_int i;
           d;
           Report.e3 t;
           Report.x2 (snd (List.hd steps) /. t);
         ])
       steps);
  (match Game.verify game with
  | Ok () ->
      print_endline
        "\nsemantic check: final program numerically equals the original (OK)"
  | Error e -> Printf.printf "\nsemantic check FAILED: %s\n" e);
  Report.subheader "final schedule";
  print_endline (Ir.Printer.body (Game.state game))

(* ------------------------------------------------------------------ *)
(* Figure 7: Snitch pass strategies                                    *)
(* ------------------------------------------------------------------ *)

let fig7 () =
  Report.header
    "Figure 7: Snitch micro-kernels, transformation strategies (frac of peak)";
  let rows =
    List.map
      (fun (e : Kernels.entry) ->
        let p = e.build () in
        let frac q = Machine.Snitch_sim.peak_fraction snitch q in
        let n = frac (Search.Passes.naive caps_snitch p) in
        let g = frac (Search.Passes.greedy caps_snitch p) in
        let h = frac (Search.Passes.heuristic caps_snitch p) in
        (e.label, n, g, h))
      Kernels.snitch_micro
  in
  Report.table
    [ "kernel"; "naive"; "greedy"; "heuristic" ]
    (List.map
       (fun (l, n, g, h) -> [ l; Report.f3 n; Report.f3 g; Report.f3 h ])
       rows);
  let gm f = Report.geomean (Array.of_list (List.map f rows)) in
  let gn = gm (fun (_, n, _, _) -> n)
  and gg = gm (fun (_, _, g, _) -> g)
  and gh = gm (fun (_, _, _, h) -> h) in
  Printf.printf
    "\ngeomean fraction of peak: naive %.3f  greedy %.3f  heuristic %.3f\n" gn
    gg gh;
  Printf.printf "geomean speedup over naive: greedy %s, heuristic %s\n"
    (Report.x2 (gg /. gn))
    (Report.x2 (gh /. gn));
  print_endline
    "(paper: greedy +46%, heuristic +58% over naive; same ordering)"

(* ------------------------------------------------------------------ *)
(* Figure 8: Snitch micro-kernels across frameworks                    *)
(* ------------------------------------------------------------------ *)

let fig8 () =
  Report.header
    "Figure 8: Snitch micro-kernels, frameworks (fraction of peak)";
  let budget = Report.search_budget () in
  let rows =
    List.map
      (fun (e : Kernels.entry) ->
        let p = e.build () in
        let frac q = Machine.Snitch_sim.peak_fraction snitch q in
        (* plain C: the naive nest through the scalar compiler *)
        let c = frac p in
        (* TVM does not know the Snitch extensions: its template space
           has no SSR/FREP moves *)
        let tvm_filter (i : Transform.Xforms.instance) =
          Baselines.tvm_template i
          && i.xname <> "enable_ssr" && i.xname <> "enable_frep"
        in
        let tvm =
          frac
            (Stoch.simulated_annealing ~seed:11 ~filter:tvm_filter
               ~space:Stoch.Edges ~budget:(budget / 2) caps_snitch
               (time target_snitch) p)
              .best
        in
        let greedy = frac (Search.Passes.greedy caps_snitch p) in
        let heuristic = frac (Search.Passes.heuristic caps_snitch p) in
        let handwritten =
          frac (Baselines.handwritten_snitch caps_snitch p).prog
        in
        (* "transformed": the manual transformation-centric session,
           represented by the best of the heuristic pass and a
           human-budget heuristic-space refinement *)
        let refined =
          (Stoch.simulated_annealing ~seed:3 ~space:Stoch.Heuristic
             ~budget:(budget / 2) caps_snitch (time target_snitch) p)
            .best
        in
        let transformed = Float.max heuristic (frac refined) in
        (e.label, c, tvm, greedy, heuristic, transformed, handwritten))
      Kernels.snitch_micro
  in
  Report.table
    [ "kernel"; "C"; "TVM"; "greedy"; "heuristic"; "transformed";
      "handwritten" ]
    (List.map
       (fun (l, c, t, g, h, tr, hw) ->
         [ l; Report.f3 c; Report.f3 t; Report.f3 g; Report.f3 h;
           Report.f3 tr; Report.f3 hw ])
       rows);
  let gm f = Report.geomean (Array.of_list (List.map f rows)) in
  Printf.printf
    "\ngeomean transformed/handwritten: %s   (paper: 1.13x)\n"
    (Report.x2
       (gm (fun (_, _, _, _, _, tr, _) -> tr)
       /. gm (fun (_, _, _, _, _, _, hw) -> hw)))

(* ------------------------------------------------------------------ *)
(* Figures 10 and 11: x86 kernel performance across frameworks         *)
(* ------------------------------------------------------------------ *)

type x86_kernel = { xlabel : string; prog : Ir.Prog.t }

let x86_report ~budget (kernels : x86_kernel list) =
  let rows =
    List.map
      (fun k ->
        let p = k.prog in
        let t_of (s : Baselines.scheduled) = Baselines.time target_x86 s in
        let pt = t_of (Baselines.pytorch target_x86 p) in
        let ort = t_of (Baselines.onnxruntime target_x86 p) in
        let jx = t_of (Baselines.jax target_x86 p) in
        let dnn = t_of (Baselines.onednn target_x86 p) in
        let pl = Baselines.pluto ~label:k.xlabel target_x86 p in
        let plt = t_of pl in
        let tv = Baselines.tvm ~budget ~label:k.xlabel target_x86 p in
        let tvt = t_of tv in
        let heur = Perfdojo.optimize Heuristic target_x86 p in
        let search =
          Perfdojo.optimize
            (Annealing { budget; space = Stoch.Heuristic })
            target_x86 p
        in
        let best = Float.min heur.time_s search.time_s in
        ( k.xlabel, pt, ort, jx, dnn, plt, tvt, heur.time_s,
          Float.min search.time_s best,
          (match pl.verdict with
          | Baselines.Failed_validation -> "pluto:INVALID"
          | _ -> ""),
          match tv.verdict with
          | Baselines.No_valid_schedule -> "tvm:NO-SCHEDULE"
          | _ -> "" ))
      kernels
  in
  Report.table
    [ "kernel"; "PyTorch"; "ONNXRT"; "JAX"; "OneDNN"; "Pluto"; "TVM";
      "ours(heur)"; "ours(search)"; "notes" ]
    (List.map
       (fun (l, pt, ort, jx, dnn, plt, tvt, h, s, note1, note2) ->
         [
           l; Report.e3 pt; Report.e3 ort; Report.e3 jx; Report.e3 dnn;
           Report.e3 plt; Report.e3 tvt; Report.e3 h; Report.e3 s;
           String.concat " " (List.filter (fun s -> s <> "") [ note1; note2 ]);
         ])
       rows);
  rows

let fig10 () =
  Report.header
    "Figure 10: x86 kernel performance, uncommon sizes (runtime, lower = better)";
  let budget = Report.search_budget () in
  let kernels =
    [
      { xlabel = "softmax"; prog = Kernels.softmax ~n:2000 ~m:130 };
      { xlabel = "layernorm"; prog = Kernels.layernorm ~n:1000 ~m:750 };
      { xlabel = "matmul"; prog = Kernels.matmul ~m:500 ~k:500 ~n:500 };
      { xlabel = "mul"; prog = Kernels.mul ~n:998 ~m:1000 };
      { xlabel = "reducemean"; prog = Kernels.reducemean ~n:3000 ~m:70 };
      { xlabel = "rmsnorm"; prog = Kernels.rmsnorm ~n:1027 ~m:514 };
      { xlabel = "relu"; prog = Kernels.relu ~n:999 ~m:1111 };
      { xlabel = "gemv"; prog = Kernels.gemv ~m:1000 ~n:1700 };
    ]
  in
  let rows = x86_report ~budget kernels in
  let gm f =
    Report.geomean (Array.of_list (List.map f rows))
  in
  Printf.printf
    "\ngeomean speedup ours(best) vs best library: %s\n"
    (Report.x2
       (gm (fun (_, pt, ort, jx, dnn, _, _, _, _, _, _) ->
            Float.min (Float.min pt ort) (Float.min jx dnn))
       /. gm (fun (_, _, _, _, _, _, _, h, s, _, _) -> Float.min h s)))

let fig11 () =
  Report.header
    "Figure 11: x86 performance on shapes from existing models (Table 3)";
  let budget = Report.search_budget () in
  let kernels =
    List.map
      (fun (e : Kernels.entry) -> { xlabel = e.label; prog = e.build () })
      Kernels.table3
  in
  let rows = x86_report ~budget kernels in
  (* the paper excludes SwiGLU (TVM produces no valid schedule there) *)
  let included =
    List.filter (fun (l, _, _, _, _, _, _, _, _, _, _) -> l <> "swiglu") rows
  in
  let gm f = Report.geomean (Array.of_list (List.map f included)) in
  Printf.printf
    "\ngeomean speedup ours(best) over TVM (excl. swiglu): %s   (paper: 1.076x)\n"
    (Report.x2
       (gm (fun (_, _, _, _, _, _, tvt, _, _, _, _) -> tvt)
       /. gm (fun (_, _, _, _, _, _, _, h, s, _, _) -> Float.min h s)))

(* ------------------------------------------------------------------ *)
(* Figure 12: convergence of search methods x space structures         *)
(* ------------------------------------------------------------------ *)

let fig12 () =
  Report.header
    "Figure 12: convergence, {sampling, annealing} x {edges, heuristic}";
  let budget = Report.search_budget () in
  let p = Kernels.softmax ~n:512 ~m:512 in
  let objective = time target_x86 in
  let runs =
    [
      ( "sampling/edges",
        Stoch.random_sampling ~seed:1 ~space:Stoch.Edges ~budget caps_x86
          objective p );
      ( "sampling/heuristic",
        Stoch.random_sampling ~seed:1 ~space:Stoch.Heuristic ~budget caps_x86
          objective p );
      ( "annealing/edges",
        Stoch.simulated_annealing ~seed:1 ~space:Stoch.Edges ~budget caps_x86
          objective p );
      ( "annealing/heuristic",
        Stoch.simulated_annealing ~seed:1 ~space:Stoch.Heuristic ~budget
          caps_x86 objective p );
    ]
  in
  let checkpoints =
    List.filter (fun c -> c <= budget) [ 1; 5; 10; 25; 50; 100; 200; 400; 700; 1000 ]
  in
  Report.table
    ("method/evals" :: List.map string_of_int checkpoints)
    (List.map
       (fun (name, (r : Stoch.result)) ->
         name
         :: List.map (fun c -> Report.e3 r.curve.(c - 1)) checkpoints)
       runs);
  print_endline
    "\n(best-so-far modelled runtime in seconds; heuristic-structured spaces";
  print_endline
    " converge faster than edges-structured ones, as in the paper)"

(* ------------------------------------------------------------------ *)
(* Figures 1b and 13: PerfLLM on GH200 and MI300A                      *)
(* ------------------------------------------------------------------ *)

let perfllm_gpu ~gpu ~figure ~paper_note () =
  Report.header figure;
  let target = Desc.Gpu gpu in
  let caps = Machine.caps target in
  let episodes = Report.rl_episodes () in
  let cfg =
    {
      Rl.Perfllm.default_config with
      episodes;
      max_steps = 20;
      action_cap = 28;
    }
  in
  let rows =
    List.map
      (fun (e : Kernels.entry) ->
        let p = e.build () in
        let pt = Baselines.time target (Baselines.pytorch target p) in
        let tvm_sched = Baselines.tvm ~budget:150 ~label:e.label target p in
        let tvm = Baselines.time target tvm_sched in
        let rl, _ =
          Rl.Perfllm.optimize ~cfg ~seed:17 caps (time target) p
        in
        Printf.printf "  tuned %-12s perfdojo %s  pytorch %s  tvm %s%s\n%!"
          e.label (Report.e3 rl.best_time) (Report.e3 pt) (Report.e3 tvm)
          (match tvm_sched.verdict with
          | Baselines.No_valid_schedule -> "  [tvm: default schedule]"
          | _ -> "");
        (e.label, pt, tvm, rl.best_time))
      Kernels.table3
  in
  print_newline ();
  Report.table
    [ "kernel"; "vs PyTorch"; "vs TVM" ]
    (List.map
       (fun (l, pt, tvm, ours) ->
         [ l; Report.x2 (pt /. ours); Report.x2 (tvm /. ours) ])
       rows);
  let gm f = Report.geomean (Array.of_list (List.map f rows)) in
  Printf.printf "\ngeomean speedup: %s vs PyTorch, %s vs TVM   %s\n"
    (Report.x2 (gm (fun (_, pt, _, o) -> pt /. o)))
    (Report.x2 (gm (fun (_, _, tvm, o) -> tvm /. o)))
    paper_note

let fig1b () =
  perfllm_gpu ~gpu:gh200
    ~figure:"Figure 1b: PerfDojo (PerfLLM) on GH200 vs PyTorch and TVM"
    ~paper_note:"(paper: 6.65x vs PyTorch, 13.65x vs TVM)" ()

let fig13 () =
  perfllm_gpu ~gpu:mi300a
    ~figure:"Figure 13: PerfDojo (PerfLLM) on MI300A vs PyTorch and TVM"
    ~paper_note:"(paper: 1.56x vs PyTorch, 1.80x vs TVM)" ()

(* ------------------------------------------------------------------ *)
(* Figure 14: discovered GPU kernels in detail                         *)
(* ------------------------------------------------------------------ *)

let fig14 () =
  Report.header "Figure 14: GPU kernel implementations discovered";
  Report.subheader
    "(a) elementwise multiplication 6x14336 on GH200";
  let target = Desc.Gpu gh200 in
  let caps = Machine.caps target in
  let p = Kernels.mul ~n:6 ~m:14336 in
  let cfg =
    {
      Rl.Perfllm.default_config with
      episodes = Report.rl_episodes ();
      max_steps = 16;
      action_cap = 28;
    }
  in
  let rl, _ = Rl.Perfllm.optimize ~cfg ~seed:23 caps (time target) p in
  let best =
    if
      rl.best_time
      <= (Perfdojo.optimize Heuristic target p).time_s
    then rl.best
    else (Perfdojo.optimize Heuristic target p).schedule
  in
  print_endline (Ir.Printer.body best);
  let pt = Baselines.time target (Baselines.pytorch target p) in
  Printf.printf "\nruntime %s vs PyTorch %s -> %s (paper: 1.71x via 128-bit loads)\n"
    (Report.e3 (time target best))
    (Report.e3 pt)
    (Report.x2 (pt /. time target best));
  Report.subheader
    "(b) batch normalization 8x64x300x300 on MI300A (wavefront 64)";
  let target = Desc.Gpu mi300a in
  let caps = Machine.caps target in
  let p = Kernels.batchnorm ~n:8 ~c:64 ~h:300 ~w:300 in
  let heur =
    Search.Passes.gpu_heuristic ~warp:mi300a.warp caps p
  in
  let search =
    Stoch.simulated_annealing ~seed:5 ~space:Stoch.Heuristic
      ~budget:(Report.search_budget ()) caps (time target) p
  in
  let best =
    if time target heur <= search.best_time then heur else search.best
  in
  print_endline (Ir.Printer.body best);
  let padded =
    Ir.Prog.fold_nodes
      (fun acc _ n ->
        match n with
        | Ir.Types.Scope { size = 320; guard = Some 300; _ } -> true
        | _ -> acc)
      false best
  in
  Printf.printf
    "\nschedule pads a 300-iteration scope to 320 (5 wavefronts): %b\n"
    padded;
  let pt = Baselines.time target (Baselines.pytorch target p) in
  let tvm = Baselines.tvm ~budget:150 ~label:"batchnorm 2" target p in
  Printf.printf "runtime %s: %s vs PyTorch, %s vs TVM (paper: 1.12x, 1.76x)\n"
    (Report.e3 (time target best))
    (Report.x2 (pt /. time target best))
    (Report.x2 (Baselines.time target tvm /. time target best));
  print_endline
    "(temporaries e, v, a, b stay in host statements before the kernel launch)"

(* ------------------------------------------------------------------ *)
(* Arm (Grace) — the conclusion's Arm datapoint                        *)
(* ------------------------------------------------------------------ *)

let arm () =
  Report.header
    "Arm (Neoverse V2 / Grace): automated optimization vs PyTorch";
  let target = Desc.Cpu Desc.grace_arm in
  let budget = Report.search_budget () in
  let rows =
    List.map
      (fun (e : Kernels.entry) ->
        let p = e.build () in
        let pt = Baselines.time target (Baselines.pytorch target p) in
        let tvm = Baselines.tvm ~budget ~label:e.label target p in
        let ours = Perfdojo.optimize_best ~budget target p in
        (e.label, pt, Baselines.time target tvm, ours.time_s))
      Kernels.table3
  in
  Report.table
    [ "kernel"; "PyTorch"; "TVM"; "PerfDojo"; "vs PyTorch"; "vs TVM" ]
    (List.map
       (fun (l, pt, tvm, o) ->
         [ l; Report.e3 pt; Report.e3 tvm; Report.e3 o;
           Report.x2 (pt /. o); Report.x2 (tvm /. o) ])
       rows);
  let gm f = Report.geomean (Array.of_list (List.map f rows)) in
  Printf.printf "\ngeomean speedup: %s vs PyTorch, %s vs TVM\n"
    (Report.x2 (gm (fun (_, pt, _, o) -> pt /. o)))
    (Report.x2 (gm (fun (_, _, tvm, o) -> tvm /. o)))

(* ------------------------------------------------------------------ *)
(* RL ablations (Sections 3.2 / 3.3)                                   *)
(* ------------------------------------------------------------------ *)

let rl_ablation () =
  Report.header
    "RL ablation: max-Bellman / Double DQN / Dueling (softmax micro, Snitch)";
  let p = Kernels.gemv ~m:64 ~n:64 in
  let run name dqn_cfg =
    let cfg =
      {
        Rl.Perfllm.default_config with
        episodes = 12;
        max_steps = 12;
        action_cap = 20;
        dqn = dqn_cfg;
      }
    in
    let r, _ =
      Rl.Perfllm.optimize ~cfg ~seed:31 caps_snitch (time target_snitch) p
    in
    (name, r.best_time, r.episode_best.(Array.length r.episode_best - 1))
  in
  let base = Rl.Dqn.default_config in
  let rows =
    [
      run "full (max-Bellman + double + dueling)" base;
      run "standard Bellman" { base with max_bellman = false };
      run "no double DQN" { base with double_dqn = false };
      run "no dueling" { base with dueling = false };
    ]
  in
  (* reward-shape comparison: the paper's exact r = c/T vs the
     log-compressed default used at these scaled-down budgets *)
  let run_shape name shape =
    let cfg =
      {
        Rl.Perfllm.default_config with
        episodes = 12;
        max_steps = 12;
        action_cap = 20;
        reward_shape = shape;
      }
    in
    let r, _ =
      Rl.Perfllm.optimize ~cfg ~seed:31 caps_snitch (time target_snitch) p
    in
    (name, r.best_time, 0.0)
  in
  let rows =
    rows
    @ [
        run "prioritized replay (excluded in paper)"
          { base with prioritized = true };
        run_shape "reward r = c/T (paper)" Rl.Perfllm.Inverse_runtime;
        run_shape "reward r = log(c/T) (default)" Rl.Perfllm.Log_speedup;
      ]
  in
  (* the policy-gradient alternative the paper rejects (§3.2) *)
  let rows =
    rows
    @ [
        (let cfg =
           {
             Rl.Reinforce.default_config with
             episodes = 12;
             max_steps = 12;
             action_cap = 20;
           }
         in
         let r =
           Rl.Reinforce.optimize ~cfg ~seed:31 caps_snitch
             (time target_snitch) p
         in
         ("policy gradient (REINFORCE, rejected in paper)", r.best_time, 0.0));
      ]
  in
  let naive_time = time target_snitch p in
  Report.table
    [ "variant"; "best runtime"; "speedup vs naive" ]
    (List.map
       (fun (n, t, _) -> [ n; Report.e3 t; Report.x2 (naive_time /. t) ])
       rows)

(* ------------------------------------------------------------------ *)
(* Tuning database: memoized search + warm-start trajectory            *)
(* ------------------------------------------------------------------ *)

(* Set by bench/main.ml's --db flag; when given, the experiment loads
   and updates a persistent database so successive bench runs keep
   improving on recorded schedules. *)
let tuning_db_file : string option ref = ref None

let tuning () =
  Report.header
    "Tuning DB: memoized evaluation and warm-started search trajectory";
  let budget = Report.search_budget () / 2 in
  let db =
    match !tuning_db_file with
    | None -> Tuning.Db.create ()
    | Some f -> (
        match Tuning.Db.load f with
        | Ok db -> db
        | Error msg ->
            Printf.printf "  (ignoring unreadable db: %s)\n" msg;
            Tuning.Db.create ())
  in
  let workloads =
    [
      ("softmax", Kernels.softmax ~n:512 ~m:512, "x86", target_x86);
      ("softmax", Kernels.softmax ~n:24576 ~m:512, "snitch", target_snitch);
      ("gemv", Kernels.gemv ~m:4096 ~n:4096, "snitch", target_snitch);
      ("layernorm", Kernels.layernorm ~n:512 ~m:1024, "x86", target_x86);
    ]
  in
  let summaries =
    List.map
      (fun (kernel, p, tname, target) ->
        let strat =
          Perfdojo.Annealing { budget; space = Stoch.Heuristic }
        in
        (* cold run: empty cache, no warm start; deposits its winner *)
        let cold_cache = Tuning.Cache.create () in
        let cold =
          Perfdojo.optimize_ctx
            ~ctx:Perfdojo.Ctx.(default |> with_seed 1 |> with_cache cold_cache)
            strat target p
        in
        (if cold.moves <> [] then
           match
             Tuning.Warmstart.record_of
               ~objective:(time target) ~caps:(Machine.caps target)
               ~kernel ~target:tname ~root:p ~moves:cold.moves
               ~evals:cold.evaluations
           with
           | Ok r -> ignore (Tuning.Db.add db r)
           | Error _ -> ());
        (* warm run: fresh cache, seeded from the database's best *)
        let warm_cache = Tuning.Cache.create () in
        let warm_start =
          Tuning.Warmstart.moves_for db ~kernel ~target:tname ~root:p
        in
        let warm =
          Perfdojo.optimize_ctx
            ~ctx:
              Perfdojo.Ctx.(
                default |> with_seed 2 |> with_cache warm_cache
                |> with_warm_start warm_start)
            strat target p
        in
        (if warm.moves <> [] then
           match
             Tuning.Warmstart.record_of
               ~objective:(time target) ~caps:(Machine.caps target)
               ~kernel ~target:tname ~root:p ~moves:warm.moves
               ~evals:warm.evaluations
           with
           | Ok r -> ignore (Tuning.Db.add db r)
           | Error _ -> ());
        (kernel, tname, time target p, cold, cold_cache, warm, warm_cache))
      workloads
  in
  Report.table
    [
      "kernel"; "target"; "naive"; "cold best"; "warm best"; "hit rate";
      "evals saved";
    ]
    (List.map
       (fun (kernel, tname, naive, (cold : Perfdojo.outcome), _,
             (warm : Perfdojo.outcome), warm_cache) ->
         [
           kernel; tname;
           Report.e3 naive;
           Report.e3 cold.time_s;
           Report.e3 warm.time_s;
           Printf.sprintf "%.1f%%" (100. *. Tuning.Cache.hit_rate warm_cache);
           string_of_int (Tuning.Cache.hits warm_cache);
         ])
       summaries);
  print_endline
    "\n(warm runs are seeded from the database's recorded best and never";
  print_endline
    " finish behind it; hits are performance-model evaluations avoided)";
  (* machine-readable summary for the perf trajectory *)
  let json =
    Tuning.Json.Obj
      [
        ("budget", Tuning.Json.Num (float_of_int budget));
        ( "workloads",
          Tuning.Json.Arr
            (List.map
               (fun (kernel, tname, _, (cold : Perfdojo.outcome), cold_cache,
                     (warm : Perfdojo.outcome), warm_cache) ->
                 Tuning.Json.Obj
                   [
                     ("kernel", Tuning.Json.Str kernel);
                     ("target", Tuning.Json.Str tname);
                     ("cold_best_s", Tuning.Json.Num cold.time_s);
                     ("warm_best_s", Tuning.Json.Num warm.time_s);
                     ( "cold_hit_rate",
                       Tuning.Json.Num (Tuning.Cache.hit_rate cold_cache) );
                     ( "warm_hit_rate",
                       Tuning.Json.Num (Tuning.Cache.hit_rate warm_cache) );
                     ( "evals_saved",
                       Tuning.Json.Num
                         (float_of_int
                            (Tuning.Cache.hits cold_cache
                            + Tuning.Cache.hits warm_cache)) );
                   ])
               summaries) );
      ]
  in
  let oc = open_out "BENCH_tuning.json" in
  output_string oc (Tuning.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  print_endline "\nwrote BENCH_tuning.json";
  match !tuning_db_file with
  | None -> ()
  | Some f ->
      Tuning.Db.save db f;
      Printf.printf "tuning database saved: %s (%d records)\n" f
        (Tuning.Db.size db)

(* ------------------------------------------------------------------ *)
(* Parallel search: worker domains vs wall-clock                       *)
(* ------------------------------------------------------------------ *)

(* The multicore story: the batched annealing search produces the same
   result for every jobs >= 1 (same seed, same batch), so the only thing
   --jobs buys is wall-clock time.  This experiment measures it, checks
   the invariance, and records jobs -> {wall, speedup} for the roadmap's
   perf trajectory.

   The analytic machine models answer in microseconds, so candidate
   evaluation here is never the bottleneck it is in production, where a
   candidate is measured by running it on the device (AutoTVM-style) and
   the host mostly *waits*.  We emulate that measuring backend with a
   fixed per-evaluation round-trip so the experiment exercises the
   latency-hiding that parallel evaluation exists for; the modelled time
   itself stays exact, so the jobs-invariance check is still strict. *)
let parallel () =
  Report.header
    "Parallel search: worker domains vs wall-clock (annealing, softmax \
     512x512, x86)";
  let budget = Report.search_budget () in
  let batch = 16 in
  let measure_latency = 0.002 (* s per evaluation, simulated device *) in
  let p = Kernels.softmax ~n:512 ~m:512 in
  let objective q =
    let t = time target_x86 q in
    Unix.sleepf measure_latency;
    t
  in
  let run jobs =
    (* every run traces into its own buffer: the stripped streams must
       agree across jobs (the observability layer's invariance
       guarantee), and the last run's stream becomes the JSONL sidecar *)
    let obs = Obs.Trace.make_buffer () in
    Parallel.Pool.with_pool ~jobs (fun pool ->
        let t0 = Unix.gettimeofday () in
        let r =
          Stoch.simulated_annealing_parallel ~seed:1 ~obs ~batch ~pool
            ~space:Stoch.Heuristic ~budget caps_x86 objective p
        in
        (r, Unix.gettimeofday () -. t0, obs))
  in
  (* sequential reference: the default --jobs 0 algorithm *)
  let t0 = Unix.gettimeofday () in
  let seq =
    Stoch.simulated_annealing ~seed:1 ~space:Stoch.Heuristic ~budget caps_x86
      objective p
  in
  let seq_wall = Unix.gettimeofday () -. t0 in
  let jobs_list = [ 1; 2; 4 ] in
  let results = List.map (fun j -> (j, run j)) jobs_list in
  let (r1 : Stoch.result), w1, obs1 = snd (List.hd results) in
  let identical =
    List.for_all
      (fun (_, ((r : Stoch.result), _, _)) ->
        r.best_time = r1.best_time && r.best_moves = r1.best_moves)
      results
  in
  let stripped obs =
    List.map Obs.Trace.strip_timing (Obs.Trace.events obs)
  in
  let trace_identical =
    let ref_stream = stripped obs1 in
    List.for_all
      (fun (_, (_, _, obs)) -> stripped obs = ref_stream)
      results
  in
  Report.table
    [ "jobs"; "wall (s)"; "speedup vs jobs=1"; "best (s)"; "evals" ]
    ([ "seq (jobs=0)"; Printf.sprintf "%.3f" seq_wall; "-";
       Report.e3 seq.best_time; string_of_int seq.evals ]
    :: List.map
         (fun (j, ((r : Stoch.result), w, _)) ->
           [
             string_of_int j;
             Printf.sprintf "%.3f" w;
             Report.x2 (w1 /. w);
             Report.e3 r.best_time;
             string_of_int r.evals;
           ])
         results);
  Printf.printf
    "\nresult identical across jobs (same seed, batch %d): %b\n" batch
    identical;
  Printf.printf "trace identical across jobs (modulo dur_s): %b\n"
    trace_identical;
  Printf.printf "recommended jobs on this machine: %d\n"
    (Parallel.Pool.default_jobs ());
  (* JSONL trace sidecar: one canonical event per line, from the last
     (highest-jobs) run.  bench/trace_lint.exe re-parses it and the
     @smoke alias fails on any malformed line. *)
  let _, (_, _, obs_last) = List.nth results (List.length results - 1) in
  let oc = open_out "BENCH_parallel_trace.jsonl" in
  List.iter
    (fun ev ->
      output_string oc (Tuning.Json.to_string ev);
      output_char oc '\n')
    (Obs.Trace.events obs_last);
  close_out oc;
  print_endline "wrote BENCH_parallel_trace.jsonl";
  let json =
    Tuning.Json.Obj
      [
        ("budget", Tuning.Json.Num (float_of_int budget));
        ("batch", Tuning.Json.Num (float_of_int batch));
        ("measure_latency_s", Tuning.Json.Num measure_latency);
        ("workload", Tuning.Json.Str "annealing/heuristic softmax 512x512 x86");
        ("identical", Tuning.Json.Str (string_of_bool identical));
        ("trace_identical", Tuning.Json.Str (string_of_bool trace_identical));
        ("seq_wall_s", Tuning.Json.Num seq_wall);
        ( "runs",
          Tuning.Json.Arr
            (List.map
               (fun (j, ((r : Stoch.result), w, _)) ->
                 Tuning.Json.Obj
                   [
                     ("jobs", Tuning.Json.Num (float_of_int j));
                     ("wall_s", Tuning.Json.Num w);
                     ("speedup_vs_jobs1", Tuning.Json.Num (w1 /. w));
                     ("best_s", Tuning.Json.Num r.best_time);
                   ])
               results) );
      ]
  in
  let oc = open_out "BENCH_parallel.json" in
  output_string oc (Tuning.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  print_endline "wrote BENCH_parallel.json"

(* ------------------------------------------------------------------ *)
(* Fault tolerance: guarded search under injected failures             *)
(* ------------------------------------------------------------------ *)

(* Set by bench/main.ml's --fault-rate flag. *)
let fault_rate = ref 0.2

(* The degradation story end to end: with a deterministic fraction of
   evaluations raising, returning NaN or burning fuel, the guarded
   search must still finish, still produce a numerically correct
   schedule, account for every quarantined evaluation (outcome.failures
   = traced search.eval_error events), and stay jobs-invariant — the
   *same* candidates fail at --jobs 1 and --jobs 4.  The experiment
   hard-fails (and with it @smoke) if any of that breaks.  It also
   measures what the guard costs when nothing fails: the overhead of
   wrapping every evaluation must be noise. *)
let faults () =
  Report.header
    "Fault tolerance: annealing under injected faults (softmax 64x64, x86)";
  let budget = max 8 (Report.search_budget () / 4) in
  let rate = !fault_rate in
  let p = Kernels.softmax ~n:64 ~m:64 in
  let injected =
    if rate = 0. then Robust.Faults.none
    else Robust.Faults.spread ~seed:7 rate
  in
  let strat = Perfdojo.Annealing { budget; space = Stoch.Heuristic } in
  let count_eval_errors obs =
    List.fold_left
      (fun acc ev ->
        match ev with
        | Util.Json.Obj (("ev", Util.Json.Str "search.eval_error") :: _) ->
            acc + 1
        | _ -> acc)
      0 (Obs.Trace.events obs)
  in
  let run label jobs strat =
    let obs = Obs.Trace.make_buffer () in
    let t0 = Unix.gettimeofday () in
    let o =
      Perfdojo.optimize_ctx
        ~ctx:
          Perfdojo.Ctx.(
            default |> with_seed 1 |> with_jobs jobs |> with_obs obs
            |> with_faults injected)
        strat target_x86 p
    in
    let wall = Unix.gettimeofday () -. t0 in
    (* a degraded run is still a correct run *)
    (match Interp.equivalent p o.schedule with
    | Ok () -> ()
    | Error msg ->
        failwith
          (Printf.sprintf "%s: schedule failed verification: %s" label msg));
    let traced = count_eval_errors obs in
    if traced <> o.failures then
      failwith
        (Printf.sprintf
           "%s: outcome.failures = %d but %d search.eval_error events traced"
           label o.failures traced);
    (label, o, wall, obs)
  in
  let runs =
    [
      run "annealing jobs=0" 0 strat;
      run "annealing jobs=1" 1 strat;
      run "annealing jobs=4" 4 strat;
      run "portfolio jobs=4" 4 (Perfdojo.Portfolio { budget });
    ]
  in
  Report.table
    [ "run"; "wall (s)"; "best (s)"; "evals"; "failures" ]
    (List.map
       (fun (label, (o : Perfdojo.outcome), wall, _) ->
         [
           label;
           Printf.sprintf "%.3f" wall;
           Report.e3 o.time_s;
           string_of_int o.evaluations;
           string_of_int o.failures;
         ])
       runs);
  (* jobs-invariance extends to the failures: jobs=1 and jobs=4 anneal
     the same candidates, quarantine the same candidates, and trace the
     same stream modulo wall-clock fields *)
  let stripped obs =
    List.map Obs.Trace.strip_timing (Obs.Trace.events obs)
  in
  let _, o1, _, obs1 = List.nth runs 1 in
  let _, o4, _, obs4 = List.nth runs 2 in
  let trace_identical =
    o1.time_s = o4.time_s
    && o1.failures = o4.failures
    && stripped obs1 = stripped obs4
  in
  if not trace_identical then
    failwith "faults: jobs=1 and jobs=4 disagree under injected faults";
  Printf.printf
    "\ninjected fault rate %.2f: every run verified numerically; failures \
     accounted exactly;\n\
     jobs=1 and jobs=4 identical (same quarantined candidates): %b\n"
    rate trace_identical;
  (* guard overhead when nothing fails: wrap the same objective in
     Guard.eval and compare against calling it raw *)
  let evals = 20_000 in
  let objective q = time target_x86 q in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to evals do
    ignore (objective p)
  done;
  let raw_s = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to evals do
    ignore (Robust.Guard.eval objective p)
  done;
  let guarded_s = Unix.gettimeofday () -. t0 in
  let overhead = if raw_s > 0. then guarded_s /. raw_s else 1. in
  Printf.printf
    "guard overhead at fault rate 0: %d evals raw %.4f s, guarded %.4f s \
     -> %.3fx\n"
    evals raw_s guarded_s overhead;
  if overhead > 5. then
    failwith
      (Printf.sprintf "faults: guard overhead %.2fx exceeds 5x bound"
         overhead);
  let json =
    Tuning.Json.Obj
      [
        ("fault_rate", Tuning.Json.Num rate);
        ("budget", Tuning.Json.Num (float_of_int budget));
        ("workload", Tuning.Json.Str "annealing/heuristic softmax 64x64 x86");
        ("trace_identical", Tuning.Json.Str (string_of_bool trace_identical));
        ("guard_overhead_ratio", Tuning.Json.Num overhead);
        ("guard_overhead_evals", Tuning.Json.Num (float_of_int evals));
        ( "runs",
          Tuning.Json.Arr
            (List.map
               (fun (label, (o : Perfdojo.outcome), wall, _) ->
                 Tuning.Json.Obj
                   [
                     ("run", Tuning.Json.Str label);
                     ("wall_s", Tuning.Json.Num wall);
                     ("best_s", Tuning.Json.Num o.time_s);
                     ("evals", Tuning.Json.Num (float_of_int o.evaluations));
                     ("failures", Tuning.Json.Num (float_of_int o.failures));
                   ])
               runs) );
      ]
  in
  let oc = open_out "BENCH_faults.json" in
  output_string oc (Tuning.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  print_endline "wrote BENCH_faults.json"

(* ------------------------------------------------------------------ *)
(* Library generation: the whole operator suite in one run             *)
(* ------------------------------------------------------------------ *)

(* The batch generator end to end: every kernel in the default suite
   optimized for x86 and Snitch, C sources + umbrella header + manifest
   emitted, then a second run over the same tuning database that must
   skip every fingerprint-matched pair.  Hard-fails (and with it
   @smoke) if the jobs=1 and jobs=4 manifests differ byte-for-byte or
   if the warm run re-optimizes an up-to-date pair.  The final (warm)
   library lands in BENCH_libgen/, whose manifest.json @smoke lints
   with trace_lint --json. *)
let libgen () =
  Report.header
    "Library generation: whole-suite batch optimize + emit (x86 + Snitch)";
  let budget = max 4 (Report.search_budget () / 8) in
  let strat = Perfdojo.Annealing { budget; space = Stoch.Heuristic } in
  let targets = [ "x86"; "snitch" ] in
  let read_file path =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let run ~db ~jobs out =
    let t0 = Unix.gettimeofday () in
    let lib =
      Libgen.generate ~strategy:strat ~db
        ~ctx:Perfdojo.Ctx.(default |> with_jobs jobs)
        ~targets ~out ()
    in
    (lib, Unix.gettimeofday () -. t0)
  in
  let lib1, w1 = run ~db:(Tuning.Db.create ()) ~jobs:1 "BENCH_libgen_jobs1" in
  let db = Tuning.Db.create () in
  let lib4, w4 = run ~db ~jobs:4 "BENCH_libgen_jobs4" in
  let m1 = read_file "BENCH_libgen_jobs1/manifest.json" in
  let m4 = read_file "BENCH_libgen_jobs4/manifest.json" in
  if m1 <> m4 then
    failwith "libgen: jobs=1 and jobs=4 manifests differ byte-for-byte";
  (* warm run over the jobs=4 database: every recorded pair must skip *)
  let warm, ww = run ~db ~jobs:4 "BENCH_libgen" in
  let pairs = List.length warm.Libgen.entries in
  if lib4.Libgen.degraded = 0 && warm.Libgen.skipped <> pairs then
    failwith
      (Printf.sprintf "libgen: warm run skipped %d of %d up-to-date pairs"
         warm.Libgen.skipped pairs);
  let row label (lib : Libgen.library) wall =
    [
      label;
      Printf.sprintf "%.3f" wall;
      string_of_int lib.Libgen.fresh;
      string_of_int lib.Libgen.skipped;
      string_of_int lib.Libgen.degraded;
    ]
  in
  Report.table
    [ "run"; "wall (s)"; "fresh"; "skipped"; "degraded" ]
    [
      row "cold jobs=1" lib1 w1;
      row "cold jobs=4" lib4 w4;
      row "warm jobs=4" warm ww;
    ];
  let n_kernels = List.length (Libgen.default_kernels ()) in
  let skip_rate = float_of_int warm.Libgen.skipped /. float_of_int pairs in
  Printf.printf
    "\nsuite coverage: %d kernels x %d targets = %d pairs; manifests \
     byte-identical across jobs\n"
    n_kernels (List.length targets) pairs;
  Printf.printf
    "parallel cold run: %s vs jobs=1; warm run skips %.0f%% in %.3f s\n"
    (Report.x2 (w1 /. w4))
    (100. *. skip_rate) ww;
  let json =
    Tuning.Json.Obj
      [
        ("budget", Tuning.Json.Num (float_of_int budget));
        ("kernels", Tuning.Json.Num (float_of_int n_kernels));
        ( "targets",
          Tuning.Json.Arr (List.map (fun t -> Tuning.Json.Str t) targets) );
        ("pairs", Tuning.Json.Num (float_of_int pairs));
        ("manifest_identical", Tuning.Json.Str (string_of_bool (m1 = m4)));
        ("cold_wall_jobs1_s", Tuning.Json.Num w1);
        ("cold_wall_jobs4_s", Tuning.Json.Num w4);
        ("parallel_speedup", Tuning.Json.Num (w1 /. w4));
        ("warm_wall_s", Tuning.Json.Num ww);
        ("warm_skip_rate", Tuning.Json.Num skip_rate);
        ("fresh", Tuning.Json.Num (float_of_int lib4.Libgen.fresh));
        ("skipped", Tuning.Json.Num (float_of_int warm.Libgen.skipped));
        ("degraded", Tuning.Json.Num (float_of_int warm.Libgen.degraded));
      ]
  in
  let oc = open_out "BENCH_libgen.json" in
  output_string oc (Tuning.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  print_endline "wrote BENCH_libgen.json (library in BENCH_libgen/)"

(* ------------------------------------------------------------------ *)
(* The tuning service: warm-query fast path vs cold search latency     *)
(* ------------------------------------------------------------------ *)

(* An in-process server under a mixed workload: one cold pass that
   searches and deposits every pair, then rounds of optimize + query
   over the same pairs that must all hit the warm path.  Hard-fails
   (and with it @smoke) unless the post-cold pass is 100% warm, the
   warm p50 sits at least 100x below the cold p50, and shutdown
   acknowledges exactly one database record per pair.  The server's
   trace lands in BENCH_serve_trace.jsonl for trace_lint. *)
let serve () =
  Report.header "Tuning service: warm-query fast path vs cold search";
  let module S = Serve.Server in
  let module P = Serve.Protocol in
  let budget = max 16 (Report.search_budget () / 2) in
  let target = "snitch" in
  let kernels = [ "scale"; "axpy"; "dot"; "vecsum" ] in
  let oc = open_out "BENCH_serve_trace.jsonl" in
  let metrics = Obs.Metrics.create () in
  let cfg =
    {
      S.default_config with
      queue_depth = 32;
      workers = 2;
      default_budget = budget;
      obs = Obs.Trace.to_channel oc;
      metrics = Some metrics;
    }
  in
  let server = S.create cfg in
  let next_id = ref 0 in
  let fresh () =
    incr next_id;
    !next_id
  in
  let optimize k =
    P.Optimize
      {
        id = fresh ();
        kernel = k;
        target;
        strategy = "annealing";
        budget;
        deadline_ms = 0;
        force = false;
      }
  in
  let query k = P.Query { id = fresh (); kernel = k; target } in
  (* cold pass: every pair searches and deposits *)
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun k ->
      match S.submit server (optimize k) with
      | P.Optimized { warm = false; _ } -> ()
      | P.Optimized { warm = true; _ } ->
          failwith ("serve: first request for " ^ k ^ " answered warm")
      | r ->
          failwith
            ("serve: cold optimize of " ^ k ^ " answered "
           ^ P.response_kind r))
    kernels;
  let cold_wall = Unix.gettimeofday () -. t0 in
  (* warm pass: optimize + query rounds, every one must hit warm *)
  let rounds = 50 in
  let warm_total = ref 0 in
  let warm_misses = ref 0 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to rounds do
    List.iter
      (fun k ->
        incr warm_total;
        (match S.submit server (optimize k) with
        | P.Optimized { warm = true; _ } -> ()
        | _ -> incr warm_misses);
        incr warm_total;
        match S.submit server (query k) with
        | P.Queried { found = true; _ } -> ()
        | _ -> incr warm_misses)
      kernels
  done;
  let warm_wall = Unix.gettimeofday () -. t0 in
  if !warm_misses > 0 then
    failwith
      (Printf.sprintf "serve: %d of %d post-cold requests missed the warm path"
         !warm_misses !warm_total);
  let summary name : Obs.Metrics.summary =
    match Obs.Metrics.histogram metrics name with
    | Some s -> s
    | None -> failwith ("serve: no samples in histogram " ^ name)
  in
  let w = summary "serve.latency_warm_s" in
  let c = summary "serve.latency_cold_s" in
  let ratio = c.p50 /. w.p50 in
  if ratio < 100. then
    failwith
      (Printf.sprintf
         "serve: warm p50 only %.0fx below cold p50 (%.3e vs %.3e)" ratio
         w.p50 c.p50);
  let requests =
    match S.submit server (P.Stats { id = fresh () }) with
    | P.Stats_reply { counters; _ } -> (
        match List.assoc_opt "serve.requests" counters with
        | Some n -> n
        | None -> failwith "serve: stats reply lacks serve.requests")
    | r -> failwith ("serve: stats answered " ^ P.response_kind r)
  in
  let records =
    match S.submit server (P.Shutdown { id = fresh () }) with
    | P.Shutdown_ack { records; _ } -> records
    | r -> failwith ("serve: shutdown answered " ^ P.response_kind r)
  in
  close_out oc;
  if records <> List.length kernels then
    failwith
      (Printf.sprintf "serve: %d records at shutdown, expected %d" records
         (List.length kernels));
  let req_s = float_of_int !warm_total /. warm_wall in
  Report.table
    [ "path"; "requests"; "wall (s)"; "p50 (s)"; "p99 (s)" ]
    [
      [
        "cold"; string_of_int c.count; Printf.sprintf "%.3f" cold_wall;
        Report.e3 c.p50; Report.e3 c.p99;
      ];
      [
        "warm"; string_of_int w.count; Printf.sprintf "%.3f" warm_wall;
        Report.e3 w.p50; Report.e3 w.p99;
      ];
    ];
  Printf.printf
    "\nwarm pass: 100%% hit (%d/%d), %.0f req/s; warm p50 %s below cold \
     p50\n"
    (!warm_total - !warm_misses)
    !warm_total req_s (Report.x2 ratio);
  let json =
    Tuning.Json.Obj
      [
        ("budget", Tuning.Json.Num (float_of_int budget));
        ("target", Tuning.Json.Str target);
        ( "kernels",
          Tuning.Json.Arr (List.map (fun k -> Tuning.Json.Str k) kernels) );
        ("requests", Tuning.Json.Num (float_of_int requests));
        ("cold_wall_s", Tuning.Json.Num cold_wall);
        ("warm_wall_s", Tuning.Json.Num warm_wall);
        ("warm_req_per_s", Tuning.Json.Num req_s);
        ("cold_p50_s", Tuning.Json.Num c.p50);
        ("cold_p99_s", Tuning.Json.Num c.p99);
        ("warm_p50_s", Tuning.Json.Num w.p50);
        ("warm_p99_s", Tuning.Json.Num w.p99);
        ("warm_to_cold_p50", Tuning.Json.Num ratio);
        ( "warm_hit_rate",
          Tuning.Json.Num
            (float_of_int (!warm_total - !warm_misses)
            /. float_of_int !warm_total) );
        ("records", Tuning.Json.Num (float_of_int records));
      ]
  in
  let oc = open_out "BENCH_serve.json" in
  output_string oc (Tuning.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  print_endline "wrote BENCH_serve.json"

(* ------------------------------------------------------------------ *)
(* Surrogate pre-ranking: evaluations saved at equal quality           *)
(* ------------------------------------------------------------------ *)

(* Train the linear ranking model on the Table-3 kernels, then search a
   held-out softmax shape twice under the same seed and budget: once
   plain, once with the model pre-ranking every candidate batch at
   filter-ratio 0.25 plus intra-batch dedup.  The claim under test: the
   filtered search stays within 5% of the unfiltered best time while
   paying for at most 40% of its simulator evaluations.  The budget is
   pinned (not PERFDOJO_BUDGET) so the assertions are deterministic. *)
let surrogate () =
  Report.header "Surrogate cost model: pre-ranked search vs full search";
  let budget = 96 in
  let target = target_x86 in
  let strat = Perfdojo.Sampling { budget; space = Stoch.Heuristic } in
  let oc = open_out "BENCH_surrogate_trace.jsonl" in
  let obs = Obs.Trace.to_channel oc in
  let metrics = Obs.Metrics.create () in
  (* phase 1: online training on the Table-3 kernels.  filter_ratio
     stays 1.0, so the model scores and learns from every real
     evaluation but never filters. *)
  let model = Surrogate.Model.create () in
  let train_outcomes =
    List.map
      (fun (e : Kernels.entry) ->
        let ctx =
          Ctx.(
            default |> with_seed 3 |> with_surrogate model |> with_obs obs
            |> with_metrics metrics)
        in
        (e, optimize_ctx ~ctx strat target (e.build ())))
      Kernels.table3
  in
  let online_updates = Surrogate.Model.updates model in
  if online_updates = 0 then
    failwith "surrogate: online training made no model updates";
  (* the offline path (perfdojo model train): every training run's
     winner plus its root becomes a database record, each
     (kernel, target) group a ranking constraint *)
  let records =
    List.concat_map
      (fun ((e : Kernels.entry), (o : outcome)) ->
        let root = e.build () in
        [
          Tuning.Record.make ~kernel:e.label ~target:"x86" ~moves:[]
            ~best_time:(time target root) ~evals:1 ~root ();
          Tuning.Record.make ~kernel:e.label ~target:"x86" ~moves:o.moves
            ~best_time:o.time_s ~evals:o.evaluations ~root ();
        ])
      train_outcomes
  in
  let offline = Surrogate.Model.create () in
  let stats : Surrogate.Model.offline_stats =
    Surrogate.Model.train_offline offline
      ~root_of:(fun ~kernel ~target:_ ->
        match Kernels.find_entry Kernels.table3 kernel with
        | e -> Some (e.build (), caps_x86)
        | exception Invalid_argument _ -> None)
      records
  in
  if stats.pairs = 0 then
    failwith "surrogate: offline training produced no ranking pairs";
  let canon m = Util.Json.to_string (Surrogate.Model.to_json m) in
  let clone m =
    match Surrogate.Model.of_json (Surrogate.Model.to_json m) with
    | Ok c -> c
    | Error e -> failwith ("surrogate: model round-trip failed: " ^ e)
  in
  if canon (clone offline) <> canon offline then
    failwith "surrogate: model serialization is not byte-stable";
  (* phase 2: held-out shape (not among the Table-3 shapes).  The
     baseline runs the same batched engine with the same seed, so the
     only difference is the pre-ranking filter. *)
  let held_out () = Kernels.softmax ~n:48 ~m:96 in
  let baseline =
    let ctx =
      Ctx.(
        default |> with_seed 11 |> with_jobs 1 |> with_obs obs
        |> with_metrics metrics)
    in
    optimize_ctx ~ctx strat target (held_out ())
  in
  let filtered_run jobs =
    let ctx =
      Ctx.(
        default |> with_seed 11 |> with_jobs jobs
        |> with_surrogate (clone model)
        |> with_filter_ratio 0.25 |> with_dedup true |> with_obs obs
        |> with_metrics metrics)
    in
    optimize_ctx ~ctx strat target (held_out ())
  in
  let filt = filtered_run 1 in
  let filt4 = filtered_run 4 in
  close_out oc;
  if filt.time_s <> filt4.time_s || filt.evaluations <> filt4.evaluations
  then
    failwith
      (Printf.sprintf
         "surrogate: filtered search is not jobs-invariant (%.3e/%d vs \
          %.3e/%d)"
         filt.time_s filt.evaluations filt4.time_s filt4.evaluations);
  let regression = filt.time_s /. baseline.time_s in
  let reduction =
    float_of_int baseline.evaluations /. float_of_int (max 1 filt.evaluations)
  in
  if regression > 1.05 then
    failwith
      (Printf.sprintf
         "surrogate: filtered best %.3e is %.1f%% over baseline %.3e"
         filt.time_s
         ((regression -. 1.) *. 100.)
         baseline.time_s);
  if float_of_int filt.evaluations > 0.4 *. float_of_int baseline.evaluations
  then
    failwith
      (Printf.sprintf
         "surrogate: filtered search used %d of %d evaluations (> 40%%)"
         filt.evaluations baseline.evaluations);
  if reduction < 2.5 then
    failwith
      (Printf.sprintf "surrogate: only %.2fx evaluation reduction" reduction);
  Report.table
    [ "path"; "best (s)"; "sim evals"; "vs baseline" ]
    [
      [
        "full search"; Report.e3 baseline.time_s;
        string_of_int baseline.evaluations; "1.00x";
      ];
      [
        "filtered (r=0.25)"; Report.e3 filt.time_s;
        string_of_int filt.evaluations;
        Printf.sprintf "%.2fx best, %.1fx fewer evals" regression reduction;
      ];
    ];
  Printf.printf
    "\nonline updates %d; offline: %d records -> %d pairs, %d updates\n"
    online_updates stats.records stats.pairs
    (Surrogate.Model.updates offline);
  Printf.printf "scored %d, kept %d, filtered out %d, dedup saved %d\n"
    (Obs.Metrics.counter metrics "surrogate.scored")
    (Obs.Metrics.counter metrics "surrogate.kept")
    (Obs.Metrics.counter metrics "surrogate.filtered")
    (Obs.Metrics.counter metrics "surrogate.dedup_saved");
  let json =
    Tuning.Json.Obj
      [
        ("budget", Tuning.Json.Num (float_of_int budget));
        ( "train_kernels",
          Tuning.Json.Arr
            (List.map
               (fun (e : Kernels.entry) -> Tuning.Json.Str e.label)
               Kernels.table3) );
        ("held_out", Tuning.Json.Str "softmax n=48 m=96");
        ("filter_ratio", Tuning.Json.Num 0.25);
        ("baseline_best_s", Tuning.Json.Num baseline.time_s);
        ( "baseline_evals",
          Tuning.Json.Num (float_of_int baseline.evaluations) );
        ("filtered_best_s", Tuning.Json.Num filt.time_s);
        ("filtered_evals", Tuning.Json.Num (float_of_int filt.evaluations));
        ("best_time_ratio", Tuning.Json.Num regression);
        ("eval_reduction", Tuning.Json.Num reduction);
        ("online_updates", Tuning.Json.Num (float_of_int online_updates));
        ("offline_records", Tuning.Json.Num (float_of_int stats.records));
        ("offline_pairs", Tuning.Json.Num (float_of_int stats.pairs));
      ]
  in
  let oc = open_out "BENCH_surrogate.json" in
  output_string oc (Tuning.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  print_endline "wrote BENCH_surrogate.json"

(* ------------------------------------------------------------------ *)
(* Exhaustive baseline: certified optima + visited-set eval savings    *)
(* ------------------------------------------------------------------ *)

(* Two claims, per small kernel:

   1. The exhaustive strategy enumerates the transformation graph to a
      small depth with canonical dedup and certifies the optimum within
      that bound, reporting the TransForm-style unique/total ratio (how
      many spellings each distinct state has).

   2. A stochastic search with the canonical visited set finds the same
      best schedule as the plain run while paying strictly fewer
      simulator evaluations — the saving the fingerprint exists for.

   Both are asserted (the experiment exits non-zero on violation) and
   recorded in BENCH_exhaustive.json; BENCH_exhaustive_trace.jsonl
   carries the exhaustive runs' level-by-level trace for trace_lint. *)
let exhaustive () =
  Report.header
    "Exhaustive baseline: certified optima and visited-set dedup savings";
  let depth = 3 in
  let budget = max 48 (Report.search_budget ()) in
  let kernels =
    [
      ("scale 16", Kernels.scale ~n:16, caps_snitch, target_snitch);
      ("relu 8x8", Kernels.relu ~n:8 ~m:8, caps_x86, target_x86);
    ]
  in
  let obs = Obs.Trace.make_buffer () in
  let rows =
    List.map
      (fun (label, p, caps, target) ->
        let ex =
          Search.Exhaustive.run ~obs ~depth caps (time target) p
        in
        if not ex.certified then
          failwith (label ^ ": exhaustive run not certified");
        if ex.unique >= ex.total then
          failwith (label ^ ": canonical dedup found no duplicates");
        let stoch visited_dedup =
          Parallel.Pool.with_pool ~jobs:2 (fun pool ->
              Stoch.simulated_annealing_parallel ~seed:5 ~visited_dedup
                ~pool ~space:Stoch.Heuristic ~budget caps (time target) p)
        in
        let plain = stoch false and dd = stoch true in
        (* the stochastic engines are calibrated against the
           certificate: within budget they must reach the certified
           optimum, and (the certificate being the point) never beat
           what exhaustive proved best within the depth bound *)
        if plain.best_time < ex.best_time *. (1. -. 1e-9) then
          failwith (label ^ ": stochastic beat the certified optimum");
        if plain.best_time > ex.best_time *. (1. +. 1e-9) then
          failwith
            (label ^ ": stochastic missed the certified optimum in budget");
        if dd.evals >= plain.evals then
          failwith
            (Printf.sprintf "%s: visited set saved nothing (%d >= %d)"
               label dd.evals plain.evals);
        if dd.best_time <> plain.best_time then
          failwith
            (Printf.sprintf "%s: visited-dedup changed the optimum"
               label);
        if
          dd.evals + dd.skipped + dd.deduped + dd.visited + dd.failures
          <> budget
        then failwith (label ^ ": budget accounting broken");
        (label, ex, plain, dd))
      kernels
  in
  Report.table
    [
      "kernel"; "depth"; "unique"; "total"; "ratio"; "certified";
      "optimum (s)"; "stoch best (s)"; "evals plain"; "evals visited";
    ]
    (List.map
       (fun (label, (ex : Search.Exhaustive.result), (plain : Stoch.result),
                 (dd : Stoch.result)) ->
         [
           label;
           string_of_int ex.depth;
           string_of_int ex.unique;
           string_of_int ex.total;
           Printf.sprintf "%.2f"
             (float_of_int ex.unique /. float_of_int ex.total);
           string_of_bool ex.certified;
           Report.e3 ex.best_time;
           Report.e3 plain.best_time;
           string_of_int plain.evals;
           string_of_int dd.evals;
         ])
       rows);
  Printf.printf
    "\nevery optimum certified to depth %d; visited-set runs matched the \
     plain optimum with strictly fewer evaluations\n"
    depth;
  let oc = open_out "BENCH_exhaustive_trace.jsonl" in
  List.iter
    (fun ev ->
      output_string oc (Tuning.Json.to_string ev);
      output_char oc '\n')
    (Obs.Trace.events obs);
  close_out oc;
  print_endline "wrote BENCH_exhaustive_trace.jsonl";
  let json =
    Tuning.Json.Obj
      [
        ("depth", Tuning.Json.Num (float_of_int depth));
        ("budget", Tuning.Json.Num (float_of_int budget));
        ( "kernels",
          Tuning.Json.Arr
            (List.map
               (fun (label, (ex : Search.Exhaustive.result),
                         (plain : Stoch.result), (dd : Stoch.result)) ->
                 Tuning.Json.Obj
                   [
                     ("kernel", Tuning.Json.Str label);
                     ("unique", Tuning.Json.Num (float_of_int ex.unique));
                     ("total", Tuning.Json.Num (float_of_int ex.total));
                     ( "unique_total_ratio",
                       Tuning.Json.Num
                         (float_of_int ex.unique /. float_of_int ex.total)
                     );
                     ( "certified",
                       Tuning.Json.Str (string_of_bool ex.certified) );
                     ( "exhausted",
                       Tuning.Json.Str (string_of_bool ex.exhausted) );
                     ("certified_best_s", Tuning.Json.Num ex.best_time);
                     ( "exhaustive_evals",
                       Tuning.Json.Num (float_of_int ex.evals) );
                     ("stoch_best_s", Tuning.Json.Num plain.best_time);
                     ( "stoch_evals_plain",
                       Tuning.Json.Num (float_of_int plain.evals) );
                     ( "stoch_evals_visited",
                       Tuning.Json.Num (float_of_int dd.evals) );
                     ( "visited_slots",
                       Tuning.Json.Num (float_of_int dd.visited) );
                   ])
               rows) );
      ]
  in
  let oc = open_out "BENCH_exhaustive.json" in
  output_string oc (Tuning.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  print_endline "wrote BENCH_exhaustive.json"

(* ------------------------------------------------------------------ *)
(* Schedule scripts: composite macro-moves deepen the certified horizon *)
(* ------------------------------------------------------------------ *)

(* Three claims, per small kernel, all asserted (the experiment — and
   @smoke with it — exits non-zero on violation):

   1. With the registered composites enabled as macro-moves, the
      exhaustive walk at depth 2 certifies a schedule at least as good
      as the atomic depth-3 certified optimum — each macro packs a
      selector-guarded 2-3 move sequence into one search step — while
      discovering strictly fewer unique states and paying strictly
      fewer simulator evaluations.

   2. Script round-trip: converting the winning move sequence to a .pds
      script and replaying it through the selector resolver lands on
      the byte-identical program (printed text and canonical
      fingerprint) — the provenance a schema-3 database record carries.

   3. A script statement whose composite refuses fails all-or-nothing
      with a typed error (and a transfo.refused trace event), leaving
      no partial application behind.

   BENCH_script.json records the per-kernel numbers;
   BENCH_script_trace.jsonl carries the script.run / target.resolve /
   transfo.refused events for trace_lint. *)
let script () =
  Report.header
    "Schedule scripts: composite macro-moves vs the atomic optimum";
  let atomic_depth = 3 and composite_depth = 2 in
  let obs = Obs.Trace.make_buffer () in
  let caps_macro = Transfo.Composites.enable ~names:[ "all" ] caps_x86 in
  let kernels =
    [
      ("relu_micro 32x32", Kernels.relu ~n:32 ~m:32);
      ("gemv 64x64", Kernels.gemv ~m:64 ~n:64);
    ]
  in
  let rows =
    List.map
      (fun (label, p) ->
        let atomic =
          Search.Exhaustive.run ~obs ~depth:atomic_depth caps_x86
            (time target_x86) p
        in
        let macro =
          Search.Exhaustive.run ~obs ~depth:composite_depth caps_macro
            (time target_x86) p
        in
        if not (atomic.certified && macro.certified) then
          failwith (label ^ ": a run lost its certificate");
        if macro.best_time > atomic.best_time *. (1. +. 1e-9) then
          failwith
            (Printf.sprintf
               "%s: composite depth-%d missed the atomic depth-%d optimum \
                (%.3e > %.3e)"
               label composite_depth atomic_depth macro.best_time
               atomic.best_time);
        if macro.unique >= atomic.unique then
          failwith (label ^ ": composites did not shrink the state count");
        if macro.evals >= atomic.evals then
          failwith (label ^ ": composites did not save evaluations");
        (* round-trip: winning moves -> .pds -> selector replay ->
           byte-identical program *)
        let replayed, applied =
          Stoch.replay_skipping caps_macro p macro.best_moves
        in
        if List.length applied <> List.length macro.best_moves then
          failwith (label ^ ": winner is not move-replayable");
        let pds = Transfo.Script.of_moves ~kernel:label applied in
        (match Transfo.Script.parse (Transfo.Script.to_string pds) with
        | Error e -> failwith (label ^ ": emitted script unparseable: " ^ e)
        | Ok reparsed -> (
            match Transfo.Script.run ~obs caps_macro p reparsed with
            | Error e ->
                failwith
                  (label ^ ": script replay failed: "
                  ^ Transfo.Script.run_error_to_string e)
            | Ok (q, _) ->
                if
                  Ir.Printer.program q <> Ir.Printer.program replayed
                  || Tuning.Record.fingerprint q
                     <> Tuning.Record.fingerprint replayed
                then failwith (label ^ ": script round-trip not identical")));
        (label, atomic, macro))
      kernels
  in
  (* all-or-nothing refusal: fuse_chain at the root scope has no
     following sibling to fuse with, so the statement must fail typed
     (emitting transfo.refused) and leave the session untouched *)
  (match
     Transfo.Script.parse "pds 1\nat path [0] do fuse_chain\n"
   with
  | Error e -> failwith ("refusal script unparseable: " ^ e)
  | Ok s -> (
      match
        Transfo.Script.run ~obs caps_macro (Kernels.relu ~n:32 ~m:32) s
      with
      | Ok _ -> failwith "fuse_chain at the root unexpectedly applied"
      | Error { err = Target.Refused _; _ } -> ()
      | Error e ->
          failwith
            ("expected a refusal, got: "
            ^ Transfo.Script.run_error_to_string e)));
  Report.table
    [
      "kernel"; "atomic d3 (s)"; "states"; "evals"; "composite d2 (s)";
      "states"; "evals";
    ]
    (List.map
       (fun (label, (a : Search.Exhaustive.result),
                 (m : Search.Exhaustive.result)) ->
         [
           label;
           Report.e3 a.best_time;
           string_of_int a.unique;
           string_of_int a.evals;
           Report.e3 m.best_time;
           string_of_int m.unique;
           string_of_int m.evals;
         ])
       rows);
  Printf.printf
    "\ncomposite macro-moves certified the depth-%d atomic optimum (or \
     better) at depth %d with fewer states; every winner script \
     round-tripped byte-identically\n"
    atomic_depth composite_depth;
  let oc = open_out "BENCH_script_trace.jsonl" in
  List.iter
    (fun ev ->
      output_string oc (Util.Json.to_string ev);
      output_char oc '\n')
    (Obs.Trace.events obs);
  close_out oc;
  print_endline "wrote BENCH_script_trace.jsonl";
  let json =
    Util.Json.Obj
      [
        ("atomic_depth", Util.Json.Num (float_of_int atomic_depth));
        ("composite_depth", Util.Json.Num (float_of_int composite_depth));
        ( "kernels",
          Util.Json.Arr
            (List.map
               (fun (label, (a : Search.Exhaustive.result),
                         (m : Search.Exhaustive.result)) ->
                 Util.Json.Obj
                   [
                     ("kernel", Util.Json.Str label);
                     ("atomic_best_s", Util.Json.Num a.best_time);
                     ( "atomic_unique",
                       Util.Json.Num (float_of_int a.unique) );
                     ("atomic_evals", Util.Json.Num (float_of_int a.evals));
                     ("composite_best_s", Util.Json.Num m.best_time);
                     ( "composite_unique",
                       Util.Json.Num (float_of_int m.unique) );
                     ( "composite_evals",
                       Util.Json.Num (float_of_int m.evals) );
                     ( "speedup_vs_atomic",
                       Util.Json.Num (a.best_time /. m.best_time) );
                   ])
               rows) );
      ]
  in
  let oc = open_out "BENCH_script.json" in
  output_string oc (Util.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  print_endline "wrote BENCH_script.json"

(* ------------------------------------------------------------------ *)
(* Crash injection: kill -9 + resume must equal the uninterrupted run  *)
(* ------------------------------------------------------------------ *)

(* The acceptance gate for the recovery subsystem, not a demo.  Four
   sections, every claim asserted (the experiment — and @smoke with it
   — exits non-zero on violation):

   1. Stochastic kill-invariance: sampling and annealing, at jobs=1
      and jobs=4, are forked, SIGKILLed at a seeded evaluation index
      and resumed in a fresh process.  The resumed result (best
      schedule, curve, exact accounting) must equal the uninterrupted
      run's, and the killed trace's checkpointed prefix followed by
      the resumed trace must splice into the uninterrupted trace
      byte-identically (modulo wall-clock fields).

   2. Exhaustive: the resumed run must still certify the {e same}
      optimum, and must re-evaluate strictly fewer candidates than a
      cold restart would.

   3. Libgen ledger: a suite killed mid-run resumes at the first
      unfinished pair (journal.replayed >= 1) and still emits a
      manifest byte-identical to the uninterrupted run's; the ledger
      is truncated once the manifest lands.

   4. Serve WAL: a daemon SIGKILLed after N acknowledged deposits —
      none of them yet in the database file — recovers all N on
      restart via write-ahead-journal replay, with the client riding
      the restart on bounded exponential-backoff reconnect. *)
let crash () =
  Report.header
    "Crash injection: kill -9 at seeded points; resume must be invariant";
  let dir = "BENCH_crash_dir" in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let in_dir f = Filename.concat dir f in
  let rm f = if Sys.file_exists f then Sys.remove f in
  let read_file path =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let read_lines path =
    let ic = open_in_bin path in
    let rec go acc =
      match input_line ic with
      | line -> go (line :: acc)
      | exception End_of_file ->
          close_in ic;
          List.rev acc
    in
    go []
  in
  let strip_line l =
    match Util.Json.of_string l with
    | Ok j -> Util.Json.to_string (Obs.Trace.strip_timing j)
    | Error e -> failwith ("crash: unparseable trace line: " ^ e)
  in
  let strip_events evs =
    List.map (fun j -> Util.Json.to_string (Obs.Trace.strip_timing j)) evs
  in
  let strip_field name = function
    | Util.Json.Obj fs ->
        Util.Json.Obj (List.filter (fun (k, _) -> k <> name) fs)
    | j -> j
  in
  let write_json path j =
    let oc = open_out path in
    output_string oc (Util.Json.to_string j);
    output_char oc '\n';
    close_out oc
  in
  let read_json path =
    match Util.Json.of_string (String.trim (read_file path)) with
    | Ok j -> j
    | Error e -> failwith ("crash: unreadable child result: " ^ e)
  in
  let take n l = List.filteri (fun i _ -> i < n) l in
  (* raw lines destined for BENCH_crash_trace.jsonl (lint coverage of
     the checkpoint.* / journal.* schemas) *)
  let bench_trace = ref [] in

  (* -- 1. stochastic kill-invariance ------------------------------- *)
  let budget = max 48 (Report.search_budget ()) in
  let every = 8 in
  let kill_at = budget * 5 / 8 in
  let root = Kernels.relu ~n:8 ~m:8 in
  let run_engine meth ~jobs ~ck ~resume ~obs ~tick =
    let objective p =
      tick ();
      time target_x86 p
    in
    let checkpoint = { Stoch.path = ck; every; resume } in
    Parallel.Pool.with_pool ~jobs (fun pool ->
        match meth with
        | `Sampling ->
            Stoch.random_sampling_parallel ~seed:9 ~obs ~checkpoint ~pool
              ~space:Stoch.Heuristic ~budget caps_x86 objective root
        | `Annealing ->
            Stoch.simulated_annealing_parallel ~seed:9 ~obs ~checkpoint
              ~pool ~space:Stoch.Heuristic ~budget caps_x86 objective root)
  in
  let stoch_json ?sim_calls (r : Stoch.result) =
    let base =
      [
        ("best_time", Recover.Bits.of_float r.best_time);
        ( "best_moves",
          Util.Json.Arr (List.map (fun m -> Util.Json.Str m) r.best_moves)
        );
        ( "curve",
          Util.Json.Arr
            (List.map Recover.Bits.of_float (Array.to_list r.curve)) );
        ("evals", Util.Json.Num (float_of_int r.evals));
        ("skipped", Util.Json.Num (float_of_int r.skipped));
        ("deduped", Util.Json.Num (float_of_int r.deduped));
        ("visited", Util.Json.Num (float_of_int r.visited));
        ("failures", Util.Json.Num (float_of_int r.failures));
      ]
    in
    Util.Json.Obj
      (match sim_calls with
      | None -> base
      | Some n -> base @ [ ("sim_calls", Util.Json.Num (float_of_int n)) ])
  in
  (* every engine run — reference, killed, resumed — happens in a
     forked child: once a process has spawned a domain (any jobs=4
     pool) the OCaml 5 runtime refuses Unix.fork for good, so the
     orchestrating parent must never run an engine itself *)
  let spawn_run ?kill_at ~meth ~jobs ~ck ~resume ~trace ~result () =
    Recover.Chaos.in_subprocess (fun () ->
        let oc = open_out trace in
        let obs = Obs.Trace.to_channel ~flush:true oc in
        let calls = Atomic.make 0 in
        let kill =
          match kill_at with
          | Some at -> Recover.Chaos.kill_switch ~at
          | None -> fun () -> ()
        in
        let tick () =
          kill ();
          Atomic.incr calls
        in
        let r = run_engine meth ~jobs ~ck ~resume ~obs ~tick in
        close_out oc;
        write_json result (stoch_json ~sim_calls:(Atomic.get calls) r))
  in
  let stoch_rows =
    List.concat_map
      (fun (mname, meth) ->
        List.map
          (fun jobs ->
            let tag = Printf.sprintf "%s_j%d" mname jobs in
            let ck_ref = in_dir ("ref_" ^ tag ^ ".ck") in
            let ck = in_dir ("kill_" ^ tag ^ ".ck") in
            rm ck_ref;
            rm ck;
            let ref_trace = in_dir ("ref_" ^ tag ^ ".jsonl") in
            let ref_json = in_dir ("ref_" ^ tag ^ ".json") in
            (if
               spawn_run ~meth ~jobs ~ck:ck_ref ~resume:false
                 ~trace:ref_trace ~result:ref_json ()
               <> Unix.WEXITED 0
             then failwith (tag ^ ": reference child did not exit cleanly"));
            let ref_j = read_json ref_json in
            let ref_evals = Recover.Field.int "evals" ref_j in
            if mname = "sampling" && jobs = 1 then
              bench_trace := !bench_trace @ read_lines ref_trace;
            let ref_stripped = List.map strip_line (read_lines ref_trace) in
            let killed_trace = in_dir ("kill_" ^ tag ^ ".jsonl") in
            let status =
              spawn_run ~kill_at ~meth ~jobs ~ck ~resume:false
                ~trace:killed_trace
                ~result:(in_dir ("kill_" ^ tag ^ ".json"))
                ()
            in
            if not (Recover.Chaos.killed status) then
              failwith (tag ^ ": child survived the seeded SIGKILL");
            let payload =
              match Recover.Store.load ~path:ck with
              | Ok p -> p
              | Error e ->
                  failwith
                    (tag ^ ": checkpoint after kill: "
                   ^ Recover.error_message e)
            in
            let events = Recover.Field.int "events" payload in
            let resumed_trace = in_dir ("res_" ^ tag ^ ".jsonl") in
            let resumed_json = in_dir ("res_" ^ tag ^ ".json") in
            (if
               spawn_run ~meth ~jobs ~ck ~resume:true ~trace:resumed_trace
                 ~result:resumed_json ()
               <> Unix.WEXITED 0
             then failwith (tag ^ ": resume child did not exit cleanly"));
            let got_j = read_json resumed_json in
            let sim_calls = Recover.Field.int "sim_calls" got_j in
            if
              Util.Json.to_string (strip_field "sim_calls" got_j)
              <> Util.Json.to_string (strip_field "sim_calls" ref_j)
            then
              failwith
                (tag
               ^ ": killed+resumed result differs from uninterrupted run");
            if sim_calls >= ref_evals then
              failwith
                (Printf.sprintf
                   "%s: resume re-evaluated %d of %d — no cheaper than a \
                    cold restart"
                   tag sim_calls ref_evals);
            let killed_lines = read_lines killed_trace in
            if List.length killed_lines < events then
              failwith (tag ^ ": killed trace shorter than its checkpoint");
            let spliced =
              List.map strip_line (take events killed_lines)
              @ List.map strip_line (read_lines resumed_trace)
            in
            if spliced <> ref_stripped then
              failwith (tag ^ ": trace splice differs from uninterrupted");
            (tag, ref_evals, sim_calls))
          [ 1; 4 ])
      [ ("sampling", `Sampling); ("annealing", `Annealing) ]
  in

  (* -- 2. exhaustive: same certificate, strictly fewer evals -------- *)
  let ex_root = Kernels.scale ~n:16 in
  let ex_depth = 3 in
  let run_ex ~ck ~resume ~obs ~tick =
    Search.Exhaustive.run ~obs
      ~checkpoint:{ Stoch.path = ck; every = 1; resume }
      ~depth:ex_depth caps_snitch
      (fun p ->
        tick ();
        time target_snitch p)
      ex_root
  in
  let ex_json ?sim_calls (r : Search.Exhaustive.result) =
    let base =
      [
        ("best_time", Recover.Bits.of_float r.best_time);
        ( "best_moves",
          Util.Json.Arr (List.map (fun m -> Util.Json.Str m) r.best_moves)
        );
        ("unique", Util.Json.Num (float_of_int r.unique));
        ("total", Util.Json.Num (float_of_int r.total));
        ("evals", Util.Json.Num (float_of_int r.evals));
        ("failures", Util.Json.Num (float_of_int r.failures));
        ("certified", Util.Json.Bool r.certified);
        ("exhausted", Util.Json.Bool r.exhausted);
      ]
    in
    Util.Json.Obj
      (match sim_calls with
      | None -> base
      | Some n -> base @ [ ("sim_calls", Util.Json.Num (float_of_int n)) ])
  in
  let ck_ex_ref = in_dir "ref_exhaustive.ck" in
  let ck_ex = in_dir "kill_exhaustive.ck" in
  rm ck_ex_ref;
  rm ck_ex;
  let obs_ex = Obs.Trace.make_buffer () in
  let ex_ref =
    run_ex ~ck:ck_ex_ref ~resume:false ~obs:obs_ex ~tick:(fun () -> ())
  in
  let ex_ref_events = Obs.Trace.events obs_ex in
  bench_trace := !bench_trace @ List.map Util.Json.to_string ex_ref_events;
  if not ex_ref.certified then failwith "crash: reference run uncertified";
  let ex_kill_at = max 2 (ex_ref.evals / 2) in
  let ex_killed_trace = in_dir "kill_exhaustive.jsonl" in
  let status =
    Recover.Chaos.in_subprocess (fun () ->
        let oc = open_out ex_killed_trace in
        let obs = Obs.Trace.to_channel ~flush:true oc in
        let tick = Recover.Chaos.kill_switch ~at:ex_kill_at in
        ignore (run_ex ~ck:ck_ex ~resume:false ~obs ~tick))
  in
  if not (Recover.Chaos.killed status) then
    failwith "crash: exhaustive child survived the seeded SIGKILL";
  let ex_events =
    match Recover.Store.load ~path:ck_ex with
    | Ok p -> Recover.Field.int "events" p
    | Error e ->
        failwith ("crash: exhaustive checkpoint: " ^ Recover.error_message e)
  in
  let ex_resumed_trace = in_dir "res_exhaustive.jsonl" in
  let ex_resumed_json = in_dir "res_exhaustive.json" in
  let status2 =
    Recover.Chaos.in_subprocess (fun () ->
        let oc = open_out ex_resumed_trace in
        let obs = Obs.Trace.to_channel ~flush:true oc in
        let calls = Atomic.make 0 in
        let r =
          run_ex ~ck:ck_ex ~resume:true ~obs ~tick:(fun () ->
              Atomic.incr calls)
        in
        close_out oc;
        write_json ex_resumed_json (ex_json ~sim_calls:(Atomic.get calls) r))
  in
  if status2 <> Unix.WEXITED 0 then
    failwith "crash: exhaustive resume child did not exit cleanly";
  let ex_got = read_json ex_resumed_json in
  let ex_sim_calls = Recover.Field.int "sim_calls" ex_got in
  (* hard gate (a): the resumed run still certifies the same optimum *)
  if
    Util.Json.to_string (strip_field "sim_calls" ex_got)
    <> Util.Json.to_string (ex_json ex_ref)
  then
    failwith
      "crash: resumed exhaustive run does not certify the same optimum";
  (* hard gate (b): resume is strictly cheaper than a cold restart *)
  if ex_sim_calls >= ex_ref.evals then
    failwith
      (Printf.sprintf
         "crash: exhaustive resume re-evaluated %d of %d — no cheaper \
          than a cold restart"
         ex_sim_calls ex_ref.evals);
  let ex_killed_lines = read_lines ex_killed_trace in
  if List.length ex_killed_lines < ex_events then
    failwith "crash: exhaustive killed trace shorter than its checkpoint";
  let ex_spliced =
    List.map strip_line (take ex_events ex_killed_lines)
    @ List.map strip_line (read_lines ex_resumed_trace)
  in
  if ex_spliced <> strip_events ex_ref_events then
    failwith "crash: exhaustive trace splice differs from uninterrupted";

  (* -- 3. libgen: ledger resume, byte-identical manifest ------------ *)
  let lg_kernels = take 12 (Libgen.default_kernels ()) in
  let lg_budget = max 8 (Report.search_budget () / 4) in
  let lg_strat =
    Perfdojo.Annealing { budget = lg_budget; space = Stoch.Heuristic }
  in
  let gen ~jobs ~out ~ledger ~resume ~obs ~metrics =
    Libgen.generate ~kernels:lg_kernels ~strategy:lg_strat
      ~db:(Tuning.Db.create ())
      ~ctx:
        Perfdojo.Ctx.(
          default |> with_jobs jobs |> with_obs obs |> with_metrics metrics
          |> with_checkpoint ledger |> with_resume resume)
      ~targets:[ "x86" ] ~out ()
  in
  let ref_ledger = in_dir "ref_libgen.journal" in
  rm ref_ledger;
  ignore
    (gen ~jobs:1 ~out:(in_dir "libgen_ref") ~ledger:ref_ledger ~resume:false
       ~obs:Obs.Trace.null ~metrics:(Obs.Metrics.create ()));
  let m_ref = read_file (in_dir "libgen_ref/manifest.json") in
  let count_lines path =
    if not (Sys.file_exists path) then 0
    else String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0
        (read_file path)
  in
  let lg_rows =
    List.map
      (fun jobs ->
        let tag = Printf.sprintf "libgen_j%d" jobs in
        let ledger = in_dir (tag ^ ".journal") in
        let out = in_dir tag in
        rm ledger;
        let killed_trace = in_dir (tag ^ "_kill.jsonl") in
        (* the kill is triggered from outside — the suite has no
           per-eval hook — once at least one pair is durably ledgered;
           the wide window is the remaining ~11 pairs *)
        let pid =
          flush stdout;
          flush stderr;
          match Unix.fork () with
          | 0 ->
              (try
                 let oc = open_out killed_trace in
                 let obs = Obs.Trace.to_channel ~flush:true oc in
                 ignore
                   (gen ~jobs ~out ~ledger ~resume:false ~obs
                      ~metrics:(Obs.Metrics.create ()))
               with _ -> Unix._exit 99);
              Unix._exit 0
          | pid -> pid
        in
        let deadline = Unix.gettimeofday () +. 120. in
        while
          count_lines ledger < 1 && Unix.gettimeofday () < deadline
        do
          Unix.sleepf 0.002
        done;
        if count_lines ledger < 1 then
          failwith (tag ^ ": ledger never grew — suite stuck?");
        Unix.kill pid Sys.sigkill;
        let _, st = Unix.waitpid [] pid in
        if not (Recover.Chaos.killed st) then
          failwith (tag ^ ": suite finished before the kill landed");
        let ledgered_at_kill = count_lines ledger in
        let resumed_trace = in_dir (tag ^ "_res.jsonl") in
        let resumed_json = in_dir (tag ^ "_res.json") in
        let status =
          Recover.Chaos.in_subprocess (fun () ->
              let metrics = Obs.Metrics.create () in
              let oc = open_out resumed_trace in
              let obs = Obs.Trace.to_channel ~flush:true oc in
              ignore (gen ~jobs ~out ~ledger ~resume:true ~obs ~metrics);
              close_out oc;
              write_json resumed_json
                (Util.Json.Obj
                   [
                     ( "replayed",
                       Util.Json.Num
                         (float_of_int
                            (Obs.Metrics.counter metrics "journal.replayed"))
                     );
                   ]))
        in
        if status <> Unix.WEXITED 0 then
          failwith (tag ^ ": resume child did not exit cleanly");
        let m = read_file (Filename.concat out "manifest.json") in
        if m <> m_ref then
          failwith (tag ^ ": resumed manifest differs from uninterrupted");
        let replayed = Recover.Field.int "replayed" (read_json resumed_json) in
        if replayed < 1 then
          failwith (tag ^ ": resume replayed no ledger entries");
        if read_file ledger <> "" then
          failwith (tag ^ ": ledger not truncated after the manifest");
        if jobs = 1 then
          bench_trace := !bench_trace @ read_lines resumed_trace;
        (tag, ledgered_at_kill, replayed))
      [ 1; 4 ]
  in

  (* -- 4. serve WAL: zero lost acknowledgements across kill -9 ------ *)
  let sock = in_dir "serve.sock" in
  let sdb = in_dir "serve_db.jsonl" in
  rm sock;
  rm sdb;
  rm (sdb ^ ".wal");
  let fork_server () =
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 ->
        (try
           let cfg =
             {
               Serve.Server.default_config with
               workers = 1;
               seed = 5;
               db_file = Some sdb;
             }
           in
           let server = Serve.Server.create cfg in
           Serve.Server.run_socket server sock
         with _ -> Unix._exit 99);
        Unix._exit 0
    | pid -> pid
  in
  let module P = Serve.Protocol in
  let retry req =
    Serve.Client.request_retry ~attempts:10 ~base_delay_ms:20 ~socket:sock
      req
  in
  let served = [ "axpy"; "dot"; "vecsum" ] in
  let pid1 = fork_server () in
  List.iteri
    (fun i k ->
      match
        retry
          (P.Optimize
             { id = i + 1; kernel = k; target = "x86"; strategy = "annealing";
               budget = 8; deadline_ms = 0; force = false })
      with
      | Ok (P.Optimized _) -> ()
      | Ok r -> failwith ("crash/serve: optimize answered " ^ P.response_kind r)
      | Error e -> failwith ("crash/serve: " ^ Serve.Client.error_message e))
    served;
  (* every reply above was WAL-journaled before it was sent; the
     database checkpoint cadence (64 appends) never ran, so kill -9
     here loses the records unless replay recovers them *)
  Unix.kill pid1 Sys.sigkill;
  let _, st1 = Unix.waitpid [] pid1 in
  if not (Recover.Chaos.killed st1) then
    failwith "crash/serve: server survived SIGKILL";
  rm sock;
  let pid2 = fork_server () in
  List.iteri
    (fun i k ->
      match retry (P.Query { id = 10 + i; kernel = k; target = "x86" }) with
      | Ok (P.Queried { found = true; _ }) -> ()
      | Ok (P.Queried { found = false; _ }) ->
          failwith ("crash/serve: acknowledged deposit lost for " ^ k)
      | Ok r -> failwith ("crash/serve: query answered " ^ P.response_kind r)
      | Error e -> failwith ("crash/serve: " ^ Serve.Client.error_message e))
    served;
  (match
     Serve.Client.with_connection sock (fun c ->
         Serve.Client.request ~deadline_ms:30000 c (P.Shutdown { id = 99 }))
   with
  | Ok (P.Shutdown_ack _) -> ()
  | Ok r -> failwith ("crash/serve: shutdown answered " ^ P.response_kind r)
  | Error e -> failwith ("crash/serve: " ^ Serve.Client.error_message e));
  ignore (Unix.waitpid [] pid2);

  (* -- report + sidecars -------------------------------------------- *)
  Report.table
    [ "run"; "cold evals"; "resumed evals"; "saved" ]
    (List.map
       (fun (tag, cold, resumed) ->
         [
           tag; string_of_int cold; string_of_int resumed;
           Printf.sprintf "%.0f%%"
             (100. *. (1. -. float_of_int resumed /. float_of_int cold));
         ])
       (stoch_rows @ [ ("exhaustive", ex_ref.evals, ex_sim_calls) ]));
  Printf.printf
    "\nevery killed+resumed run matched its uninterrupted twin (result, \
     accounting, spliced trace);\nlibgen manifests byte-identical after \
     resume; serve recovered %d/%d acknowledged deposits\n"
    (List.length served) (List.length served);
  let oc = open_out "BENCH_crash_trace.jsonl" in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    !bench_trace;
  close_out oc;
  print_endline "wrote BENCH_crash_trace.jsonl";
  let json =
    Util.Json.Obj
      [
        ("budget", Util.Json.Num (float_of_int budget));
        ("kill_at", Util.Json.Num (float_of_int kill_at));
        ( "stochastic",
          Util.Json.Arr
            (List.map
               (fun (tag, cold, resumed) ->
                 Util.Json.Obj
                   [
                     ("run", Util.Json.Str tag);
                     ("cold_evals", Util.Json.Num (float_of_int cold));
                     ("resumed_evals", Util.Json.Num (float_of_int resumed));
                   ])
               stoch_rows) );
        ( "exhaustive",
          Util.Json.Obj
            [
              ("certified", Util.Json.Bool true);
              ("cold_evals", Util.Json.Num (float_of_int ex_ref.evals));
              ( "resumed_evals",
                Util.Json.Num (float_of_int ex_sim_calls) );
              ("kill_at", Util.Json.Num (float_of_int ex_kill_at));
            ] );
        ( "libgen",
          Util.Json.Arr
            (List.map
               (fun (tag, ledgered, replayed) ->
                 Util.Json.Obj
                   [
                     ("run", Util.Json.Str tag);
                     ("manifest_identical", Util.Json.Bool true);
                     ( "ledgered_at_kill",
                       Util.Json.Num (float_of_int ledgered) );
                     ("replayed", Util.Json.Num (float_of_int replayed));
                   ])
               lg_rows) );
        ( "serve",
          Util.Json.Obj
            [
              ( "acknowledged",
                Util.Json.Num (float_of_int (List.length served)) );
              ( "recovered",
                Util.Json.Num (float_of_int (List.length served)) );
            ] );
      ]
  in
  write_json "BENCH_crash.json" json;
  print_endline "wrote BENCH_crash.json"

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let all : (string * (unit -> unit)) list =
  [
    (* crash must run before any experiment that spawns pool domains:
       the OCaml 5 runtime permanently refuses Unix.fork once a domain
       has been created in the process, and crash orchestrates by
       forking *)
    ("crash", crash);
    ("table1", table1);
    ("table2", table2);
    ("table3", table3);
    ("onnx", Onnx_coverage.run);
    ("fig3", fig3);
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig4-9", fig4_9);
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig10", fig10);
    ("fig11", fig11);
    ("fig12", fig12);
    ("fig1b", fig1b);
    ("fig13", fig13);
    ("fig14", fig14);
    ("arm", arm);
    ("rl-ablation", rl_ablation);
    ("tuning", tuning);
    ("parallel", parallel);
    ("faults", faults);
    ("libgen", libgen);
    ("serve", serve);
    ("surrogate", surrogate);
    ("exhaustive", exhaustive);
    ("script", script);
  ]
