(* trace_lint: validate a JSONL trace file.

   Every line must (1) parse as a single canonical JSON value, (2)
   re-print byte-identically (the canonical-form invariant the tuning
   database and the trace sink share), and (3) be an object carrying an
   "ev" string — the trace event envelope.  Exit status 1 on the first
   violation, so the @smoke alias catches a sink regression the moment
   it produces a malformed or non-canonical line.

   With --json, remaining arguments are single-document files instead
   (e.g. a library manifest.json): the whole file must be one canonical
   JSON object on one newline-terminated line. *)

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

(* The crash-safety events carry fixed typed schemas: resume splices
   traces by these fields, so a checkpoint/journal line that drops or
   retypes one would corrupt recovery silently — @smoke fails loudly
   here instead. *)
let field_int path lineno ev fields name =
  match List.assoc_opt name fields with
  | Some (Util.Json.Num f) when Float.is_integer f && f >= 0. -> ()
  | Some _ ->
      fail "%s:%d: %s: %S is not a non-negative integer" path lineno ev name
  | None -> fail "%s:%d: %s: missing field %S" path lineno ev name

let field_str path lineno ev fields name =
  match List.assoc_opt name fields with
  | Some (Util.Json.Str _) -> ()
  | Some _ -> fail "%s:%d: %s: %S is not a string" path lineno ev name
  | None -> fail "%s:%d: %s: missing field %S" path lineno ev name

let lint_schema path lineno ev fields =
  let int = field_int path lineno ev fields in
  let str = field_str path lineno ev fields in
  match ev with
  | "checkpoint.write" ->
      (* the stochastic engines add skipped/deduped/visited; filled and
         evals are the common contract every writer honors *)
      int "filled";
      int "evals"
  | "journal.append" ->
      str "kind";
      str "key"
  | "journal.replay" ->
      str "kind";
      int "entries"
  (* The targeting/script events are the audit trail for schedule
     scripts: a replayed script is reconstructed from exactly these
     fields, so a writer dropping one would break script forensics. *)
  | "script.run" ->
      int "version";
      int "statements"
  | "target.resolve" ->
      str "selector";
      str "path"
  | "transfo.refused" ->
      str "transfo";
      str "anchor";
      str "reason"
  | _ -> ()

let lint_line path lineno line =
  match Util.Json.of_string line with
  | Error msg -> fail "%s:%d: unparseable JSON: %s" path lineno msg
  | Ok json ->
      let reprinted = Util.Json.to_string json in
      if reprinted <> line then
        fail "%s:%d: not canonical:\n  read:      %s\n  reprinted: %s" path
          lineno line reprinted;
      (match json with
      | Util.Json.Obj fields -> (
          match List.assoc_opt "ev" fields with
          | Some (Util.Json.Str ev) -> lint_schema path lineno ev fields
          | Some _ -> fail "%s:%d: \"ev\" is not a string" path lineno
          | None -> fail "%s:%d: event without an \"ev\" field" path lineno)
      | _ -> fail "%s:%d: event is not a JSON object" path lineno)

let lint path =
  let ic =
    try open_in path
    with Sys_error msg -> fail "cannot open trace: %s" msg
  in
  let n = ref 0 in
  (try
     while true do
       incr n;
       lint_line path !n (input_line ic)
     done
   with End_of_file -> close_in ic);
  Printf.printf "%s: %d events OK\n" path (!n - 1)

let lint_json path =
  let ic =
    try open_in_bin path
    with Sys_error msg -> fail "cannot open document: %s" msg
  in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  if n = 0 || s.[n - 1] <> '\n' then
    fail "%s: document is not newline-terminated" path;
  let body = String.sub s 0 (n - 1) in
  if String.contains body '\n' then
    fail "%s: document spans more than one line" path;
  match Util.Json.of_string body with
  | Error msg -> fail "%s: unparseable JSON: %s" path msg
  | Ok json ->
      let reprinted = Util.Json.to_string json in
      if reprinted <> body then
        fail "%s: not canonical:\n  read:      %s\n  reprinted: %s" path body
          reprinted;
      (match json with
      | Util.Json.Obj _ -> ()
      | _ -> fail "%s: document is not a JSON object" path);
      Printf.printf "%s: canonical JSON document OK\n" path

let () =
  let rec go json_mode = function
    | [] -> ()
    | "--json" :: rest -> go true rest
    | path :: rest ->
        (if json_mode then lint_json else lint) path;
        go json_mode rest
  in
  match Array.to_list Sys.argv with
  | _ :: (_ :: _ as args) -> go false args
  | _ ->
      prerr_endline
        "usage: trace_lint [--json] FILE.jsonl [FILE.jsonl ...]";
      exit 2
