(* trace_lint: validate a JSONL trace file.

   Every line must (1) parse as a single canonical JSON value, (2)
   re-print byte-identically (the canonical-form invariant the tuning
   database and the trace sink share), and (3) be an object carrying an
   "ev" string — the trace event envelope.  Exit status 1 on the first
   violation, so the @smoke alias catches a sink regression the moment
   it produces a malformed or non-canonical line. *)

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let lint_line path lineno line =
  match Util.Json.of_string line with
  | Error msg -> fail "%s:%d: unparseable JSON: %s" path lineno msg
  | Ok json ->
      let reprinted = Util.Json.to_string json in
      if reprinted <> line then
        fail "%s:%d: not canonical:\n  read:      %s\n  reprinted: %s" path
          lineno line reprinted;
      (match json with
      | Util.Json.Obj fields -> (
          match List.assoc_opt "ev" fields with
          | Some (Util.Json.Str _) -> ()
          | Some _ -> fail "%s:%d: \"ev\" is not a string" path lineno
          | None -> fail "%s:%d: event without an \"ev\" field" path lineno)
      | _ -> fail "%s:%d: event is not a JSON object" path lineno)

let lint path =
  let ic =
    try open_in path
    with Sys_error msg -> fail "cannot open trace: %s" msg
  in
  let n = ref 0 in
  (try
     while true do
       incr n;
       lint_line path !n (input_line ic)
     done
   with End_of_file -> close_in ic);
  Printf.printf "%s: %d events OK\n" path (!n - 1)

let () =
  match Array.to_list Sys.argv with
  | _ :: (_ :: _ as paths) -> List.iter lint paths
  | _ ->
      prerr_endline "usage: trace_lint FILE.jsonl [FILE.jsonl ...]";
      exit 2
